package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cogg/internal/obs"
)

// Front is the reverse-proxy tier over a Client: the handler cogdfront
// serves. Compile and batch traffic routes by spec key through the full
// policy engine; grammar-walk sessions — stateful cursors living on
// exactly one replica — get sticky routing via a replica token folded
// into the session ID. The token is a hash of the replica's URL, not a
// position in this front's target list, so the front stays stateless
// and a restart (or a second front with the same targets in any order)
// still routes every open session home.
type Front struct {
	c       *Client
	ring    *obs.Ring
	process string
}

// NewFront wraps a Client.
func NewFront(c *Client) *Front {
	return &Front{c: c, ring: obs.NewRing(256), process: "cogdfront"}
}

// SetProcess names this front in exported trace fragments
// ("cogdfront@:8471"). Call before serving traffic.
func (f *Front) SetProcess(p string) { f.process = p }

// startTrace opens the front's own trace fragment for one inbound
// request: parented from inbound propagation headers when the caller
// sent any, rooted fresh otherwise. Everything the policy engine does
// downstream — attempts, hedges, the degraded tier — hangs under the
// returned context's span.
func (f *Front) startTrace(r *http.Request, name string) (*obs.Trace, int, context.Context) {
	tid, parent := obs.Extract(r.Header)
	tr := obs.NewTrace(tid, name)
	tr.SetProcess(f.process)
	if parent != "" {
		tr.SetRemoteParent(parent)
	}
	span := tr.StartSpan("request", -1)
	return tr, span, obs.ContextWith(r.Context(), tr, span)
}

// finishTrace closes the request span and publishes the fragment to the
// front's ring, where /v1/traces (and cogg trace) can collect it.
func (f *Front) finishTrace(tr *obs.Trace, span int) {
	tr.EndSpan(span)
	f.ring.Add(tr.Snapshot())
}

// Handler builds the front's mux:
//
//	POST /v1/compile          routed by the request's spec
//	POST /v1/batch            routed by the first unit's spec
//	POST /v1/grammar/session  routed by spec; session_id gains a replica token
//	POST /v1/grammar/next     sticky to the session's replica
//	GET  /healthz             liveness: always 200
//	GET  /readyz              200 when at least one replica (or the local
//	                          tier) can take traffic, else 503
//	GET  /varz                replica health + policy counters as JSON
//	GET  /metrics             Prometheus text exposition (cluster_* series)
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		f.proxy(w, r, "/v1/compile", specKeyCompile)
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		f.proxy(w, r, "/v1/batch", specKeyBatch)
	})
	mux.HandleFunc("/v1/grammar/session", f.handleGrammarSession)
	mux.HandleFunc("/v1/grammar/next", f.handleGrammarNext)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", f.handleReadyz)
	mux.HandleFunc("/varz", f.handleVarz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/v1/traces", f.handleTraces)
	mux.HandleFunc("/v1/artifacts/", f.handleArtifacts)
	return mux
}

// handleArtifacts makes the front a read-only window onto the fleet's
// shared blob tier: a GET or HEAD for one digest sweeps the replicas in
// order and forwards the first hit. A replica answering 404 is a
// healthy miss — the sweep continues — and only when every admissible
// replica misses does the front answer 404 itself. Writes stay
// replica-to-replica (each cogd publishes what it builds); the front
// never accepts a PUT.
func (f *Front) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	for _, rep := range f.c.reps {
		if rep.br.State() == BreakerOpen {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.url+r.URL.Path, nil)
		if err != nil {
			continue
		}
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		res, err := f.c.hc.Do(req)
		if err != nil {
			rep.br.Failure()
			continue
		}
		rep.br.Success()
		if res.StatusCode == http.StatusNotFound {
			_ = res.Body.Close()
			continue
		}
		for _, h := range []string{"Content-Type", "Content-Length", "ETag", "X-Blob-Content-Sha256"} {
			if v := res.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Cogd-Replica", rep.url)
		w.WriteHeader(res.StatusCode)
		_, _ = io.Copy(w, res.Body)
		_ = res.Body.Close()
		return
	}
	http.Error(w, "artifact not found in fleet", http.StatusNotFound)
}

// specKeyCompile pulls the routing key out of a compile body.
func specKeyCompile(body []byte) string {
	var req struct {
		Spec string `json:"spec"`
	}
	_ = json.Unmarshal(body, &req)
	return req.Spec
}

// specKeyBatch keys a batch by its first unit's spec: batches are
// normally homogeneous, and a mixed batch still lands somewhere valid —
// affinity is an optimization, never a correctness requirement.
func specKeyBatch(body []byte) string {
	var req struct {
		Units []struct {
			Spec string `json:"spec"`
		} `json:"units"`
	}
	_ = json.Unmarshal(body, &req)
	if len(req.Units) > 0 {
		return req.Units[0].Spec
	}
	return ""
}

func (f *Front) proxy(w http.ResponseWriter, r *http.Request, path string, keyFn func([]byte) string) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeFrontError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	tr, span, ctx := f.startTrace(r, "proxy:"+path)
	defer f.finishTrace(tr, span)
	w.Header().Set(obs.TraceIDHeader, tr.ID())
	res, err := f.c.Do(ctx, path, keyFn(body), body)
	if err != nil {
		tr.SetFailure("no-answer")
		writeFrontError(w, http.StatusBadGateway, err)
		return
	}
	writeResult(w, res)
}

// handleTraces exports the front's completed trace fragments, the same
// JSON shape as cogd's /v1/traces: {"traces":[...]}, newest first.
// ?id= filters to one trace's fragments; ?n= bounds the count.
func (f *Front) handleTraces(w http.ResponseWriter, r *http.Request) {
	var out []*obs.TraceData
	if id := r.URL.Query().Get("id"); id != "" {
		out = f.ring.Find(id)
	} else {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				writeFrontError(w, http.StatusBadRequest, fmt.Errorf("n must be a non-negative integer"))
				return
			}
			n = v
		}
		out = f.ring.Snapshot(n)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Traces []*obs.TraceData `json:"traces"`
	}{Traces: out})
}

// handleGrammarSession opens a cursor somewhere in the fleet and brands
// the returned session ID with the answering replica's URL-hash token
// ("3f21ab9c:<id>"), or "local:<id>" for the degraded tier, so
// /v1/grammar/next can route back. Opening a session is not idempotent
// — a hedged duplicate that loses the race would strand a cursor in the
// losing replica's bounded session table until its TTL — so this path
// routes through DoNoHedge.
func (f *Front) handleGrammarSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeFrontError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	tr, span, ctx := f.startTrace(r, "proxy:/v1/grammar/session")
	defer f.finishTrace(tr, span)
	w.Header().Set(obs.TraceIDHeader, tr.ID())
	res, err := f.c.DoNoHedge(ctx, "/v1/grammar/session", specKeyCompile(body), body)
	if err != nil {
		tr.SetFailure("no-answer")
		writeFrontError(w, http.StatusBadGateway, err)
		return
	}
	if res.Status == http.StatusOK {
		res.Body = rewriteSessionID(res.Body, f.sessionPrefix(res))
	}
	writeResult(w, res)
}

// handleGrammarNext strips the replica token off the session ID and
// sends the advance to exactly that replica — a cursor is state on one
// process; failing over would silently restart the walk.
func (f *Front) handleGrammarNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeFrontError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req struct {
		SessionID string `json:"session_id"`
		Symbol    string `json:"symbol"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeFrontError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	prefix, inner, ok := splitSessionID(req.SessionID)
	if !ok {
		writeFrontError(w, http.StatusBadRequest,
			fmt.Errorf("session_id %q carries no replica prefix; open sessions through this front", req.SessionID))
		return
	}
	req.SessionID = inner
	fwd, _ := json.Marshal(req)

	tr, span, ctx := f.startTrace(r, "proxy:/v1/grammar/next")
	defer f.finishTrace(tr, span)
	w.Header().Set(obs.TraceIDHeader, tr.ID())
	var res *Result
	if prefix == "local" {
		if f.c.opts.Local == nil {
			writeFrontError(w, http.StatusBadGateway, fmt.Errorf("local session but no local tier configured"))
			return
		}
		res, err = f.c.localDo(ctx, "/v1/grammar/next", fwd)
	} else {
		rep, ok := f.c.replicaByToken(prefix)
		if !ok {
			writeFrontError(w, http.StatusNotFound,
				fmt.Errorf("session prefix %q matches no replica in this front's target set", prefix))
			return
		}
		res, err = f.c.DoAt(ctx, rep.idx, "/v1/grammar/next", fwd)
	}
	if err != nil {
		tr.SetFailure("no-answer")
		writeFrontError(w, http.StatusBadGateway, err)
		return
	}
	res.Body = rewriteSessionID(res.Body, prefix+":")
	writeResult(w, res)
}

// sessionPrefix brands a session with the answering replica's token —
// a hash of its URL, stable across front restarts and independent of
// target-list order — or "local" for the degraded tier.
func (f *Front) sessionPrefix(res *Result) string {
	if res.Degraded {
		return "local:"
	}
	return f.c.reps[res.ReplicaIdx].token + ":"
}

// splitSessionID divides "3f21ab9c:abc" into ("3f21ab9c", "abc", true);
// IDs without a prefix report false.
func splitSessionID(id string) (prefix, inner string, ok bool) {
	i := strings.IndexByte(id, ':')
	if i <= 0 {
		return "", id, false
	}
	return id[:i], id[i+1:], true
}

// rewriteSessionID prefixes the session_id field of a JSON object body;
// bodies without one pass through unchanged.
func rewriteSessionID(body []byte, prefix string) []byte {
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil {
		return body
	}
	id, _ := obj["session_id"].(string)
	if id == "" {
		return body
	}
	obj["session_id"] = prefix + id
	out, err := json.Marshal(obj)
	if err != nil {
		return body
	}
	return append(out, '\n')
}

// handleReadyz answers 200 when traffic has somewhere to go: any replica
// whose last probe said ready (or is unprobed with a non-open breaker),
// or the local degradation tier as a last resort.
func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := f.c.opts.Local != nil
	if !ready {
		for _, rep := range f.c.reps {
			probed, rdy := rep.isReady()
			if probed && !rdy {
				continue
			}
			if rep.br.State() != BreakerOpen {
				ready = true
				break
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no admissible replica")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (f *Front) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(f.c.Snapshot())
}

func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if f.c.opts.Registry != nil {
		_ = f.c.opts.Registry.WriteText(w)
	}
}

// writeResult copies a cluster Result onto the wire, tagging the
// answering replica so operators can see routing from curl.
func writeResult(w http.ResponseWriter, res *Result) {
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if tid := res.Header.Get("X-Trace-Id"); tid != "" {
		w.Header().Set("X-Trace-Id", tid)
	}
	w.Header().Set("X-Cogd-Replica", res.Replica)
	if res.Attempts > 1 || res.Hedges > 0 {
		w.Header().Set("X-Cogd-Attempts", strconv.Itoa(res.Attempts))
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

func writeFrontError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
