package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"cogg/internal/blob"
	"cogg/internal/ir"
	"cogg/internal/obs"
	"cogg/internal/server"
)

func newFrontOver(t *testing.T, f *testFleet, opts Options) *httptest.Server {
	t.Helper()
	opts.Targets = f.urls
	cl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	fts := httptest.NewServer(NewFront(cl).Handler())
	t.Cleanup(fts.Close)
	return fts
}

func postJSON(t *testing.T, url string, req any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// TestFrontProxiesCompile: a compile through the front behaves exactly
// like a direct one, plus the routing headers operators debug with.
func TestFrontProxiesCompile(t *testing.T) {
	f := newFleet(t, 2)
	fts := newFrontOver(t, f, Options{ProbeInterval: -1, HedgeAfter: -1})

	var resp server.CompileResponse
	r := postJSON(t, fts.URL+"/v1/compile",
		server.CompileRequest{Name: "front.if", Lang: "if", Source: goodIF}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("compile via front: %d", r.StatusCode)
	}
	if resp.Instructions == 0 {
		t.Error("compile via front produced no instructions")
	}
	if rep := r.Header.Get("X-Cogd-Replica"); rep == "" {
		t.Error("front response carries no X-Cogd-Replica")
	}

	// Terminal errors pass through untouched: a blocked parse is a 422
	// wherever it runs, not something to retry around the fleet.
	r = postJSON(t, fts.URL+"/v1/compile",
		server.CompileRequest{Name: "bad.if", Lang: "if", Source: "no_such_operator fullword"}, nil)
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("blocked parse via front: %d, want 422", r.StatusCode)
	}
}

// TestFrontGrammarStickiness: a grammar session opened through the
// front gets a replica-branded ID, and advances route back to exactly
// the replica holding the cursor — across as many steps as the walk
// takes.
func TestFrontGrammarStickiness(t *testing.T) {
	f := newFleet(t, 2)
	fts := newFrontOver(t, f, Options{ProbeInterval: -1, HedgeAfter: -1})

	var open server.GrammarSessionResponse
	if r := postJSON(t, fts.URL+"/v1/grammar/session", server.GrammarSessionRequest{}, &open); r.StatusCode != http.StatusOK {
		t.Fatalf("open session via front: %d", r.StatusCode)
	}
	branded := regexp.MustCompile(`^[0-9a-f]{8,}:`)
	if !branded.MatchString(open.SessionID) {
		t.Fatalf("session_id %q carries no replica token", open.SessionID)
	}
	prefix := open.SessionID[:strings.IndexByte(open.SessionID, ':')+1]

	// Walk a few symbols; every answer must keep the brand so the next
	// advance still routes home.
	toks, err := ir.ParseTokens(goodIF)
	if err != nil {
		t.Fatal(err)
	}
	var next server.GrammarNextResponse
	for _, tok := range toks[:3] {
		sym := tok.Sym
		r := postJSON(t, fts.URL+"/v1/grammar/next",
			server.GrammarNextRequest{SessionID: open.SessionID, Symbol: sym}, &next)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("advance %q via front: %d", sym, r.StatusCode)
		}
		if !strings.HasPrefix(next.SessionID, prefix) {
			t.Fatalf("advance %q lost the replica prefix: %q", sym, next.SessionID)
		}
		open.SessionID = next.SessionID
	}

	// An unbranded ID is a client error, not a lottery over replicas.
	r := postJSON(t, fts.URL+"/v1/grammar/next",
		server.GrammarNextRequest{SessionID: "nob-rand", Symbol: "assign"}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unbranded session_id: %d, want 400", r.StatusCode)
	}

	// A token for a replica this front does not know is a 404, not a
	// misroute.
	r = postJSON(t, fts.URL+"/v1/grammar/next",
		server.GrammarNextRequest{SessionID: "deadbeef:ghost", Symbol: "assign"}, nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown replica token: %d, want 404", r.StatusCode)
	}
}

// TestFrontGrammarStickinessAcrossFronts: the replica token in a
// session ID is a hash of the replica's URL, not a position in one
// front's -targets order — a session opened through one front must
// advance through a second front whose target list is reversed, exactly
// the restart/multi-front scenario the package doc promises survives.
func TestFrontGrammarStickinessAcrossFronts(t *testing.T) {
	f := newFleet(t, 2)
	ftsA := newFrontOver(t, f, Options{ProbeInterval: -1, HedgeAfter: -1})
	reversed := &testFleet{urls: []string{f.urls[1], f.urls[0]}}
	ftsB := newFrontOver(t, reversed, Options{ProbeInterval: -1, HedgeAfter: -1})

	var open server.GrammarSessionResponse
	if r := postJSON(t, ftsA.URL+"/v1/grammar/session", server.GrammarSessionRequest{}, &open); r.StatusCode != http.StatusOK {
		t.Fatalf("open session via front A: %d", r.StatusCode)
	}
	toks, err := ir.ParseTokens(goodIF)
	if err != nil {
		t.Fatal(err)
	}
	var next server.GrammarNextResponse
	r := postJSON(t, ftsB.URL+"/v1/grammar/next",
		server.GrammarNextRequest{SessionID: open.SessionID, Symbol: toks[0].Sym}, &next)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("advance via front B (reversed targets): %d", r.StatusCode)
	}
	prefix := open.SessionID[:strings.IndexByte(open.SessionID, ':')+1]
	if !strings.HasPrefix(next.SessionID, prefix) {
		t.Errorf("advance via front B rebranded the session: %q -> %q", open.SessionID, next.SessionID)
	}
}

// TestFrontReadyz: the front's readiness is the fleet's readiness — 200
// while anyone can take traffic, 503 (with Retry-After) when the whole
// fleet is gone, while its own liveness stays green throughout.
func TestFrontReadyz(t *testing.T) {
	f := newFleet(t, 2)
	opts := Options{ProbeInterval: 15 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond, HedgeAfter: -1}
	opts.Targets = f.urls
	cl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	fts := httptest.NewServer(NewFront(cl).Handler())
	t.Cleanup(fts.Close)

	waitReadyz := func(want int) *http.Response {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(fts.URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == want || time.Now().After(deadline) {
				return resp
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	if r := waitReadyz(http.StatusOK); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz over a healthy fleet: %d", r.StatusCode)
	}

	f.kill(0)
	f.kill(1)
	r := waitReadyz(http.StatusServiceUnavailable)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz over a dead fleet: %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("front 503 carries no Retry-After")
	}

	// Liveness is not readiness, for the front too.
	hr, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("front healthz with a dead fleet: %d, want 200", hr.StatusCode)
	}

	// /varz reflects the probes' verdict.
	vr, err := http.Get(fts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(vr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	vr.Body.Close()
	for i, rs := range snap.Replicas {
		if rs.Probed && rs.Ready {
			t.Errorf("varz says dead replica %d is ready", i)
		}
	}
}

// TestFrontMetricsExposition: the cluster_* series come out of the
// front's /metrics in Prometheus text form.
func TestFrontMetricsExposition(t *testing.T) {
	f := newFleet(t, 2)
	opts := Options{ProbeInterval: -1, HedgeAfter: -1, Registry: obs.NewRegistry()}
	opts.Targets = f.urls
	cl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	fts := httptest.NewServer(NewFront(cl).Handler())
	t.Cleanup(fts.Close)

	if _, err := cl.Do(context.Background(), "/v1/compile", "m", compileBody(t, "metrics.if")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := string(raw)
	for _, series := range []string{
		"cluster_attempts_total",
		"cluster_requests_total",
		"cluster_breaker_state",
		"cluster_attempt_seconds",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}

// TestFrontArtifactPassthrough: GET /v1/artifacts/{digest} through the
// front sweeps the replicas — a miss on the first falls through to the
// one holding the blob, and a fleet-wide miss is a clean 404.
func TestFrontArtifactPassthrough(t *testing.T) {
	f := newFleet(t, 2)
	fts := newFrontOver(t, f, Options{ProbeInterval: -1, HedgeAfter: -1})

	payload := []byte("fleet artifact")
	key := blob.DigestParts("front", "artifact")
	// Seed only the SECOND replica: the sweep must fall through the
	// first replica's 404.
	if err := f.servers[1].Artifacts().Put(context.Background(), key, payload); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fts.URL + blob.ArtifactPathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact via front: %d, want 200", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("artifact body = %q", got)
	}
	if resp.Header.Get("ETag") == "" || resp.Header.Get("X-Cogd-Replica") == "" {
		t.Error("passthrough dropped the ETag or replica attribution")
	}

	// Absent digest: every replica misses, the front answers 404.
	resp2, err := http.Get(fts.URL + blob.ArtifactPathPrefix + blob.DigestParts("absent"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("fleet-wide miss: %d, want 404", resp2.StatusCode)
	}

	// The front is a read-only window: PUT is refused.
	req, _ := http.NewRequest(http.MethodPut, fts.URL+blob.ArtifactPathPrefix+key, bytes.NewReader(payload))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT via front: %d, want 405", resp3.StatusCode)
	}
}
