package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"

	"cogg/internal/obs"
)

// localDo serves one request through the degradation tier: an
// in-process handler built lazily (and at most once) from Options.Local.
// The JSON response gets "degraded":true injected so callers — and the
// humans reading coggload reports — can tell a locally compiled answer
// from a fleet one.
func (c *Client) localDo(ctx context.Context, path string, body []byte) (*Result, error) {
	c.localMu.Lock()
	if c.localH == nil && c.localErr == nil {
		c.localH, c.localErr = c.opts.Local()
	}
	h, err := c.localH, c.localErr
	c.localMu.Unlock()
	if err != nil {
		return nil, err
	}

	// The degraded tier is a process-internal hop, but it propagates
	// exactly like a network one: a local-fallback span plus injected
	// headers, so the in-process server's fragment still parents under
	// this request instead of orphaning.
	tr, parent := obs.FromContext(ctx)
	span := -1
	if tr != nil {
		span = tr.StartSpan("local-fallback", parent)
		defer tr.EndSpan(span)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if tr != nil {
		obs.Inject(req.Header, tr.ID(), tr.SpanID(span))
	}
	rec := &recorder{hdr: http.Header{}, status: http.StatusOK}
	h.ServeHTTP(rec, req)

	return &Result{
		Status:     rec.status,
		Header:     rec.hdr,
		Body:       markDegraded(rec.buf.Bytes()),
		Replica:    "local",
		ReplicaIdx: -1,
		Degraded:   true,
	}, nil
}

// recorder is a minimal ResponseWriter capturing status, headers, and
// body from the in-process handler.
type recorder struct {
	hdr    http.Header
	buf    bytes.Buffer
	status int
	wrote  bool
}

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(p)
}

// markDegraded sets "degraded":true in a JSON object body. Non-object
// bodies (error text, arrays) pass through unchanged — the Result's
// Degraded field still records the tier.
func markDegraded(body []byte) []byte {
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil || obj == nil {
		return body
	}
	obj["degraded"] = true
	out, err := json.Marshal(obj)
	if err != nil {
		return body
	}
	return append(out, '\n')
}
