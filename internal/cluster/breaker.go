package cluster

import (
	"time"

	"cogg/internal/fleet"
)

// The per-replica circuit breaker implementation lives in
// internal/fleet so the blob tier's httpblob client can share it
// without importing this package (which would cycle through
// server → batch → blob). The aliases below keep cluster's historical
// names — BreakerState in replica status JSON, the state constants in
// metrics — pointing at the single implementation.

// BreakerState is a circuit breaker's position.
type BreakerState = fleet.BreakerState

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed = fleet.BreakerClosed
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen = fleet.BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen = fleet.BreakerOpen
)

type breaker = fleet.Breaker

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return fleet.NewBreaker(threshold, cooldown)
}
