package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-replica circuit breaker. It trips open after
// Threshold consecutive failures, rejects everything for Cooldown, then
// half-opens: one request is admitted as a probe, and its outcome
// either closes the breaker or slams it open for another cooldown.
//
// The breaker is deliberately per-replica, not per-(replica, spec): the
// failures it watches — connection refused, request timeouts, 5xx —
// are process-level symptoms, and one sick replica should shed all of
// its traffic at once rather than spec by spec.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool

	// onTransition is the metrics hook, called (outside the fast path,
	// inside the lock) on every state change.
	onTransition func(to BreakerState)

	now func() time.Time // test hook
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

func (b *breaker) transition(to BreakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow reports whether a request may be sent. A true return from the
// half-open state consumes the single probe slot, so the caller must
// follow up with success or failure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a request that reached the replica and got a sane
// answer.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != BreakerClosed {
		b.probing = false
		b.transition(BreakerClosed)
	}
}

// cancelProbe releases the half-open probe slot without judging the
// replica. A request admitted as the probe can end for reasons that
// say nothing about the replica's health — the hedge winner canceled
// it, or the caller's context ended. Without this release the slot
// would stay consumed forever and the breaker would sit half-open
// rejecting everything, permanently ejecting the replica.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// failure records a transport error, attempt timeout, or 5xx.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transition(BreakerOpen)
	case BreakerOpen:
		// Late failures from requests admitted before the trip; the
		// breaker is already open, just keep the cooldown fresh enough.
	}
}

// current reports the state without consuming a probe slot.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
