package cluster

import (
	"context"
	"io"
	"net/http"
	"time"
)

// startProbers launches one active health prober per replica. Each
// probes GET /readyz on the probe interval: readiness is stricter than
// liveness (a draining or still-warming replica answers 503 there while
// /healthz stays 200), which is exactly the signal routing wants —
// stop preferring a replica the moment it stops wanting traffic.
//
// Active probing and the breakers are deliberately separate channels:
// probes flip the replica's ready bit but never trip its breaker, so a
// probe blip cannot shed live traffic, and a recovering replica
// (probe ok again) still re-enters through the breaker's half-open
// single-probe admission rather than taking a thundering herd.
func (c *Client) startProbers() {
	for _, rep := range c.reps {
		c.probeWG.Add(1)
		go c.probeLoop(rep)
	}
}

func (c *Client) probeLoop(rep *replica) {
	defer c.probeWG.Done()
	// First probe immediately, then on the ticker, so a freshly built
	// client learns the fleet's shape within one probe timeout.
	c.probeOnce(rep)
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.probeOnce(rep)
		case <-c.stopProbe:
			return
		}
	}
}

func (c *Client) probeOnce(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	ready := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err == nil {
		resp, err := c.hc.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
		}
	}
	if ready {
		c.m.probe(rep, "ok").Inc()
	} else {
		c.m.probe(rep, "fail").Inc()
	}
	rep.setReady(ready)
}
