package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"cogg/internal/faultinject"
	"cogg/internal/server"
)

// The chaos suite runs the policy engine against real cogd replicas —
// in-process server instances behind httptest listeners — and injures
// them mid-flight: kills, injected admission faults, partial response
// writes. The invariant under every injury short of losing the whole
// fleet: zero failed requests, byte-identical output.

const goodIF = "assign fullword dsp.96 r.13 pos_constant v.7"

// fleet is n live cogd replicas behind real listeners.
type testFleet struct {
	servers []*server.Server
	https   []*httptest.Server
	urls    []string
}

func newFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for _, ts := range f.https {
			ts.Close() // idempotent: already-killed replicas are fine
		}
		for _, s := range f.servers {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = s.Drain(ctx)
			cancel()
			s.Close()
		}
	})
	return f
}

// kill takes replica i down hard: established connections reset,
// listener closed — the closest an in-process test gets to SIGKILL.
func (f *testFleet) kill(i int) {
	f.https[i].CloseClientConnections()
	f.https[i].Close()
}

// indexOf maps a replica name (host:port) back to its fleet index.
func (f *testFleet) indexOf(t *testing.T, name string) int {
	t.Helper()
	for i, u := range f.urls {
		if u == "http://"+name {
			return i
		}
	}
	t.Fatalf("no fleet replica named %q (urls %v)", name, f.urls)
	return -1
}

func compileBody(t *testing.T, name string) []byte {
	t.Helper()
	b, err := json.Marshal(server.CompileRequest{Name: name, Lang: "if", Source: goodIF})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFailoverOnKilledOwner: the routing owner of a key dies; a request
// for that key must succeed anyway, answered by a fallback replica
// along the ring.
func TestFailoverOnKilledOwner(t *testing.T) {
	f := newFleet(t, 3)
	cl, err := New(Options{
		Targets:        f.urls,
		MaxRetries:     2,
		AttemptTimeout: 5 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		HedgeAfter:     -1,
		ProbeInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const key = "amdahl470"
	owner := cl.Owner(key)
	f.kill(f.indexOf(t, owner))

	res, err := cl.Do(context.Background(), "/v1/compile", key, compileBody(t, "failover.if"))
	if err != nil {
		t.Fatalf("request with a dead owner failed outright: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	if res.Replica == owner {
		t.Fatalf("answer claims to come from the killed owner %s", owner)
	}
	if res.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (owner try plus failover)", res.Attempts)
	}
	snap := cl.Snapshot()
	if snap.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", snap.Failovers)
	}
	// The dead owner's breaker learned from the transport error.
	st := snap.Replicas[f.indexOf(t, owner)]
	if st.Breaker == BreakerOpen.String() {
		return // already open — even better
	}
	// One request = one failure; the breaker needs threshold hits to
	// open, so closed is also correct here. Just assert the counter
	// machinery saw the replica at all.
	if snap.Attempts < 2 {
		t.Errorf("attempts counter = %d, want >= 2", snap.Attempts)
	}
}

// TestChaosKillReplicaMidRun is the headline invariant: concurrent
// deck-producing compiles against a 3-replica fleet, one replica
// SIGKILLed mid-run — zero failed requests, and every deck
// byte-identical to the one a direct, unharmed daemon produces.
func TestChaosKillReplicaMidRun(t *testing.T) {
	src, err := os.ReadFile("../server/testdata/appendix1.pas")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.CompileRequest{
		Name: "appendix1.pas", Lang: "pascal", Source: string(src), Deck: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The reference deck, from a standalone server the chaos never
	// touches.
	ref, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	refCl, err := New(Options{Targets: []string{refTS.URL}, ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer refCl.Close()
	refRes, err := refCl.Do(context.Background(), "/v1/compile", "ref", body)
	if err != nil || refRes.Status != 200 {
		t.Fatalf("reference compile: err=%v status=%d", err, refRes.Status)
	}
	var refResp server.CompileResponse
	if err := json.Unmarshal(refRes.Body, &refResp); err != nil {
		t.Fatal(err)
	}
	if refResp.Deck == "" {
		t.Fatal("reference compile produced no deck")
	}

	f := newFleet(t, 3)
	cl, err := New(Options{
		Targets:        f.urls,
		MaxRetries:     3,
		AttemptTimeout: 10 * time.Second,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		HedgeAfter:     -1, // hedging has its own test; keep this one about retry
		ProbeInterval:  20 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const (
		workers   = 4
		perWorker = 15
	)
	victim := f.indexOf(t, cl.Owner("appendix1.pas"))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
		done     = make(chan struct{})
	)
	// Kill the owner of the spec key partway into the run.
	go func() {
		time.Sleep(30 * time.Millisecond)
		f.kill(victim)
		close(done)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := cl.Do(context.Background(), "/v1/compile", "appendix1.pas", body)
				mu.Lock()
				switch {
				case err != nil:
					failures = append(failures, fmt.Sprintf("w%d/%d: %v", w, i, err))
				case res.Status != 200:
					failures = append(failures, fmt.Sprintf("w%d/%d: status %d: %s", w, i, res.Status, res.Body))
				default:
					var resp server.CompileResponse
					if jerr := json.Unmarshal(res.Body, &resp); jerr != nil {
						failures = append(failures, fmt.Sprintf("w%d/%d: bad body: %v", w, i, jerr))
					} else if resp.Deck != refResp.Deck {
						failures = append(failures, fmt.Sprintf("w%d/%d: deck differs from reference (replica %s)", w, i, res.Replica))
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	<-done
	if len(failures) > 0 {
		t.Fatalf("%d/%d requests failed under a mid-run replica kill; first: %s",
			len(failures), workers*perWorker, failures[0])
	}
	snap := cl.Snapshot()
	t.Logf("chaos run: %d attempts, %d retries, %d failovers, victim breaker %s",
		snap.Attempts, snap.Retries, snap.Failovers, snap.Replicas[victim].Breaker)
}

// TestHedgeRescuesSlowReplica: the owner browns out (an injected
// admission stall), the hedge fires a duplicate at the next replica,
// and the duplicate's answer wins while the stalled primary is
// canceled.
func TestHedgeRescuesSlowReplica(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "server/admit", Key: "slow.if", Kind: faultinject.KindDelay,
		Delay: 400 * time.Millisecond, Count: 1,
	})
	defer faultinject.Reset()

	f := newFleet(t, 2)
	cl, err := New(Options{
		Targets:       f.urls,
		MaxRetries:    0,
		HedgeAfter:    15 * time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Do(context.Background(), "/v1/compile", "slow.if", compileBody(t, "slow.if"))
	if err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	if res.Hedges < 1 {
		t.Errorf("hedges = %d, want >= 1", res.Hedges)
	}
	snap := cl.Snapshot()
	if snap.Hedges < 1 || snap.HedgeWins < 1 {
		t.Errorf("snapshot hedges=%d wins=%d, want both >= 1 (the stalled primary cannot have answered first)",
			snap.Hedges, snap.HedgeWins)
	}
}

// TestPartialResponseRetried: a replica dies mid-write (injected
// truncation + connection abort). The client must classify the torn
// body as a transport failure and retry to a healthy replica, never
// surfacing the partial JSON.
func TestPartialResponseRetried(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "server/response/write", Key: "torn.if", Kind: faultinject.KindError, Count: 1,
	})
	defer faultinject.Reset()

	f := newFleet(t, 2)
	cl, err := New(Options{
		Targets:       f.urls,
		MaxRetries:    2,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		HedgeAfter:    -1,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Do(context.Background(), "/v1/compile", "torn.if", compileBody(t, "torn.if"))
	if err != nil {
		t.Fatalf("request failed despite retry budget: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	var resp server.CompileResponse
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		t.Fatalf("surfaced body does not parse (torn response leaked?): %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (torn first write, clean retry)", res.Attempts)
	}
	if snap := cl.Snapshot(); snap.Retries != 1 {
		t.Errorf("retries = %d, want 1", snap.Retries)
	}
}

// TestDegradedLocalFallback: the whole fleet is unreachable; with a
// Local tier configured the request is served in-process and the
// response is flagged degraded, so callers can tell a fleet answer
// from a lifeboat answer.
func TestDegradedLocalFallback(t *testing.T) {
	var (
		localMu sync.Mutex
		local   *server.Server
	)
	t.Cleanup(func() {
		localMu.Lock()
		defer localMu.Unlock()
		if local != nil {
			local.Close()
		}
	})
	cl, err := New(Options{
		Targets:       []string{"http://127.0.0.1:9"}, // discard port: refused
		MaxRetries:    1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
		HedgeAfter:    -1,
		ProbeInterval: -1,
		Local: func() (http.Handler, error) {
			s, err := server.New(server.Options{})
			if err != nil {
				return nil, err
			}
			localMu.Lock()
			local = s
			localMu.Unlock()
			return s.Handler(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Do(context.Background(), "/v1/compile", "amdahl470", compileBody(t, "lifeboat.if"))
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if !res.Degraded || res.Replica != "local" || res.ReplicaIdx != -1 {
		t.Fatalf("result not marked degraded: %+v", res)
	}
	if res.Status != 200 {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	var resp struct {
		Degraded bool `json:"degraded"`
		Listing  string
	}
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Errorf("body carries no \"degraded\":true: %s", res.Body)
	}
	if snap := cl.Snapshot(); snap.Degraded != 1 {
		t.Errorf("snapshot degraded = %d, want 1", snap.Degraded)
	}

	// The local tier is built once and reused.
	res2, err := cl.Do(context.Background(), "/v1/compile", "amdahl470", compileBody(t, "lifeboat2.if"))
	if err != nil || !res2.Degraded {
		t.Fatalf("second degraded request: err=%v res=%+v", err, res2)
	}
	if snap := cl.Snapshot(); snap.Degraded != 2 {
		t.Errorf("snapshot degraded = %d, want 2", snap.Degraded)
	}
}
