package cluster

import (
	"sync"

	"cogg/internal/obs"
)

// metrics are the policy engine's instruments. With a nil registry the
// counters still exist and accumulate (Snapshot reads them); they are
// simply not exposed.
type metrics struct {
	attempts  *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	failovers *obs.Counter
	degraded  *obs.Counter
	latency   *obs.Histogram

	mu         sync.Mutex
	reg        *obs.Registry
	perReplica map[string]*obs.Counter // replica|outcome -> counter
	perProbe   map[string]*obs.Counter // replica|outcome -> counter
}

func newMetrics(reg *obs.Registry, reps []*replica) *metrics {
	m := &metrics{
		reg:        reg,
		perReplica: map[string]*obs.Counter{},
		perProbe:   map[string]*obs.Counter{},
		attempts: reg.Counter("cluster_attempts_total",
			"Requests sent to replicas, hedges included.", ""),
		retries: reg.Counter("cluster_retries_total",
			"Policy-engine retries (backoff sleeps taken).", ""),
		hedges: reg.Counter("cluster_hedges_total",
			"Hedged duplicate requests fired past the latency threshold.", ""),
		hedgeWins: reg.Counter("cluster_hedge_wins_total",
			"Requests whose hedge answered before the primary.", ""),
		failovers: reg.Counter("cluster_failovers_total",
			"Requests answered by a replica other than the hash owner.", ""),
		degraded: reg.Counter("cluster_degraded_total",
			"Requests served by local in-process compilation because no replica could answer.", ""),
		latency: reg.Histogram("cluster_attempt_seconds",
			"Per-attempt latency against replicas, in seconds; buckets carry trace-ID exemplars.",
			"", obs.LatencyBuckets).EnableExemplars(),
	}
	for _, rep := range reps {
		rep := rep
		reg.GaugeFunc("cluster_breaker_state",
			"Replica circuit breaker state: 0 closed, 1 half-open, 2 open.",
			obs.L("replica", rep.name),
			func() float64 { return float64(rep.br.State()) })
		reg.GaugeFunc("cluster_replica_ready",
			"Last active health probe verdict: 1 ready, 0 not (or never probed).",
			obs.L("replica", rep.name),
			func() float64 {
				if _, ready := rep.isReady(); ready {
					return 1
				}
				return 0
			})
		// Breaker transitions by destination state, via the breaker's
		// hook so the counters see every flip including probe failures.
		trans := map[BreakerState]*obs.Counter{}
		for _, st := range []BreakerState{BreakerClosed, BreakerHalfOpen, BreakerOpen} {
			trans[st] = reg.Counter("cluster_breaker_transitions_total",
				"Circuit breaker state transitions by replica and destination state.",
				obs.L("replica", rep.name, "to", st.String()))
		}
		rep.br.OnTransition = func(to BreakerState) {
			if ctr, ok := trans[to]; ok {
				ctr.Inc()
			}
		}
	}
	return m
}

// replica returns the requests counter for one (replica, outcome):
// outcome is ok, retryable, transport, or canceled.
func (m *metrics) replica(rep *replica, outcome string) *obs.Counter {
	return m.lookup(m.perReplica, "cluster_requests_total",
		"Replica answers by outcome: ok (terminal), retryable (429/5xx), transport (error), canceled (hedge or caller).",
		rep, outcome)
}

// probe returns the probes counter for one (replica, outcome).
func (m *metrics) probe(rep *replica, outcome string) *obs.Counter {
	return m.lookup(m.perProbe, "cluster_probes_total",
		"Active health probes by replica and outcome.", rep, outcome)
}

func (m *metrics) lookup(cache map[string]*obs.Counter, name, help string, rep *replica, outcome string) *obs.Counter {
	key := rep.name + "|" + outcome
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := cache[key]; ok {
		return c
	}
	c := m.reg.Counter(name, help, obs.L("replica", rep.name, "outcome", outcome))
	cache[key] = c
	return c
}
