package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring with virtual nodes. Each replica owns
// VNodes points on a 64-bit circle; a key routes to the first point
// clockwise of its hash. The point of hashing spec keys — rather than
// round-robining — is cache affinity: every request for one
// specification lands on the same replica, so that replica's session
// pool and decoded table module stay hot for exactly its specs, and
// adding a replica reshuffles only ~1/N of the key space.
type ring struct {
	points   []ringPoint
	replicas []*replica
}

type ringPoint struct {
	hash uint64
	rep  int // index into replicas
}

func newRing(replicas []*replica, vnodes int) *ring {
	r := &ring{
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
		replicas: replicas,
	}
	for i, rep := range replicas {
		for v := 0; v < vnodes; v++ {
			h := hash64(rep.url + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, rep: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Ties (astronomically rare) break on replica index so the ring
		// is deterministic whatever order the points sorted in.
		return p.rep < q.rep
	})
	return r
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Speed is
// irrelevant here (routing happens once per request, not per reduction)
// and SHA-256 keeps the point distribution uniform without tuning.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// order returns every replica in preference order for key: the owner
// (first point clockwise of the key's hash) first, then the remaining
// replicas in the order their points appear walking the ring. The
// failover order is therefore as stable as the ring itself — every
// client that knows the same target list computes the same order.
func (r *ring) order(key string) []*replica {
	out := make([]*replica, 0, len(r.replicas))
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.rep] {
			seen[p.rep] = true
			out = append(out, r.replicas[p.rep])
		}
	}
	return out
}
