package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cogg/internal/faultinject"
	"cogg/internal/obs"
	"cogg/internal/server"
)

// The propagation suite verifies the tentpole invariant: every path a
// request can take through the policy engine — hedged duplicates,
// breaker-open failovers, the degraded local tier — yields trace
// fragments that stitch into one connected cross-process tree, never
// orphans.

// newNamedFleet is newFleet with per-replica process names, so stitched
// timelines can tell the replicas apart.
func newNamedFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Options{Process: fmt.Sprintf("cogd-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for _, ts := range f.https {
			ts.Close()
		}
		for _, s := range f.servers {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = s.Drain(ctx)
			cancel()
			s.Close()
		}
	})
	return f
}

// newClientTrace builds the caller-side trace with a root request span,
// as cogdfront's startTrace does.
func newClientTrace(name string) (*obs.Trace, context.Context) {
	tr := obs.NewTrace("", name)
	tr.SetProcess("loadgen")
	span := tr.StartSpan("request", -1)
	return tr, obs.ContextWith(context.Background(), tr, span)
}

// fleetFragments collects every replica's fragments of one trace via
// the same /v1/traces?id= endpoint cogg trace scrapes. Unreachable
// replicas (killed mid-test) contribute nothing.
func fleetFragments(t *testing.T, urls []string, id string) []*obs.TraceData {
	t.Helper()
	var frags []*obs.TraceData
	for _, u := range urls {
		resp, err := http.Get(u + "/v1/traces?id=" + id)
		if err != nil {
			continue
		}
		var payload struct {
			Traces []*obs.TraceData `json:"traces"`
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding %s/v1/traces: %v", u, err)
		}
		frags = append(frags, payload.Traces...)
	}
	return frags
}

// allNotes flattens a fragment set's span notes for containment checks.
func allNotes(frags []*obs.TraceData) string {
	var b strings.Builder
	for _, f := range frags {
		for _, sp := range f.Spans {
			b.WriteString(sp.Note)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestTraceHedgeLoserConnected: a hedged request against a stalled
// primary. The stitched tree must contain both attempt spans — the
// hedge winner and the canceled loser — connected under the cluster
// span, annotated hedge-win/hedge-lose, spanning the client and the
// winning replica's processes.
func TestTraceHedgeLoserConnected(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "server/admit", Key: "hedge-trace.if", Kind: faultinject.KindDelay,
		Delay: 400 * time.Millisecond, Count: 1,
	})
	defer faultinject.Reset()

	f := newNamedFleet(t, 2)
	cl, err := New(Options{
		Targets:       f.urls,
		MaxRetries:    0,
		HedgeAfter:    15 * time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tr, ctx := newClientTrace("hedge-trace")
	res, err := cl.Do(ctx, "/v1/compile", "hedge-trace.if", compileBody(t, "hedge-trace.if"))
	if err != nil || res.Status != 200 {
		t.Fatalf("hedged request: err=%v status=%d", err, res.Status)
	}
	if res.Hedges < 1 {
		t.Fatalf("hedges = %d, want >= 1", res.Hedges)
	}

	td := tr.Snapshot()
	notes := allNotes([]*obs.TraceData{td})
	if !strings.Contains(notes, "hedge-win") || !strings.Contains(notes, "hedge-lose") {
		t.Errorf("client fragment lacks hedge-win/hedge-lose annotations:\n%s", td.Tree())
	}
	attempts := 0
	for _, sp := range td.Spans {
		if strings.HasPrefix(sp.Name, "attempt:") {
			attempts++
			if sp.Parent < 0 || !strings.HasPrefix(td.Spans[sp.Parent].Name, "cluster:") {
				t.Errorf("attempt span %q not parented under the cluster span", sp.Name)
			}
		}
	}
	if attempts < 2 {
		t.Errorf("client fragment has %d attempt spans, want >= 2 (primary + hedge):\n%s", attempts, td.Tree())
	}

	frags := append([]*obs.TraceData{td}, fleetFragments(t, f.urls, tr.ID())...)
	st := obs.Stitch(frags)
	if st.Orphans != 0 {
		t.Errorf("stitched trace has %d orphan spans, want 0:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Processes) < 2 {
		t.Errorf("stitched trace spans processes %v, want >= 2 (client + winning replica):\n%s",
			st.Processes, st.Tree())
	}
}

// TestTraceBreakerOpenFailover: the key's owner is dead and its breaker
// open. A traced request must record the breaker rejection and the
// failover on the cluster span, and the stitched tree must connect the
// answering replica's server spans under the surviving attempt.
func TestTraceBreakerOpenFailover(t *testing.T) {
	f := newNamedFleet(t, 2)
	cl, err := New(Options{
		Targets:          f.urls,
		MaxRetries:       2,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		HedgeAfter:       -1,
		ProbeInterval:    -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute, // stays open for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const key = "breaker-trace"
	owner := cl.Owner(key)
	f.kill(f.indexOf(t, owner))

	// Untraced request: the owner's transport error trips its breaker
	// (threshold 1) and the failover replica answers.
	if res, err := cl.Do(context.Background(), "/v1/compile", key, compileBody(t, "trip.if")); err != nil || res.Status != 200 {
		t.Fatalf("breaker-tripping request: err=%v res=%+v", err, res)
	}

	tr, ctx := newClientTrace("breaker-trace")
	res, err := cl.Do(ctx, "/v1/compile", key, compileBody(t, "breaker.if"))
	if err != nil || res.Status != 200 {
		t.Fatalf("traced request: err=%v status=%d", err, res.Status)
	}
	if res.Replica == owner {
		t.Fatalf("answer claims to come from the dead owner %s", owner)
	}

	td := tr.Snapshot()
	notes := allNotes([]*obs.TraceData{td})
	if !strings.Contains(notes, "breaker-open:"+owner) {
		t.Errorf("cluster span not annotated breaker-open:%s:\n%s\nnotes:\n%s", owner, td.Tree(), notes)
	}

	frags := append([]*obs.TraceData{td}, fleetFragments(t, f.urls, tr.ID())...)
	st := obs.Stitch(frags)
	if st.Orphans != 0 {
		t.Errorf("stitched trace has %d orphan spans, want 0:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Processes) < 2 {
		t.Errorf("stitched trace spans processes %v, want >= 2 (client + failover replica):\n%s",
			st.Processes, st.Tree())
	}
}

// TestTraceDegradedLocalConnected: the whole fleet is unreachable and
// the degraded local tier answers. The in-process hop must propagate
// like a network one — a local-fallback span in the client fragment,
// the local server's fragment remote-parented under it — so the
// stitched tree stays connected.
func TestTraceDegradedLocalConnected(t *testing.T) {
	var (
		localMu sync.Mutex
		local   *server.Server
	)
	t.Cleanup(func() {
		localMu.Lock()
		defer localMu.Unlock()
		if local != nil {
			local.Close()
		}
	})
	cl, err := New(Options{
		Targets:       []string{"http://127.0.0.1:9"}, // discard port: refused
		MaxRetries:    1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
		HedgeAfter:    -1,
		ProbeInterval: -1,
		Local: func() (http.Handler, error) {
			s, err := server.New(server.Options{Process: "cogd-local"})
			if err != nil {
				return nil, err
			}
			localMu.Lock()
			local = s
			localMu.Unlock()
			return s.Handler(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tr, ctx := newClientTrace("degraded-trace")
	res, err := cl.Do(ctx, "/v1/compile", "amdahl470", compileBody(t, "lifeboat.if"))
	if err != nil || !res.Degraded {
		t.Fatalf("degraded request: err=%v res=%+v", err, res)
	}

	td := tr.Snapshot()
	var fallback *obs.Span
	for i := range td.Spans {
		if td.Spans[i].Name == "local-fallback" {
			fallback = &td.Spans[i]
		}
	}
	if fallback == nil {
		t.Fatalf("client fragment has no local-fallback span:\n%s", td.Tree())
	}
	if !strings.Contains(allNotes([]*obs.TraceData{td}), "degraded") {
		t.Errorf("cluster span not annotated degraded:\n%s", td.Tree())
	}

	// The local tier has no listener; scrape its ring through the handler
	// directly, exactly the payload /v1/traces?id= would serve.
	localMu.Lock()
	h := local.Handler()
	localMu.Unlock()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces?id="+tr.ID(), nil))
	var payload struct {
		Traces []*obs.TraceData `json:"traces"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) == 0 {
		t.Fatal("local tier recorded no fragment for the degraded request")
	}

	st := obs.Stitch(append([]*obs.TraceData{td}, payload.Traces...))
	if st.Orphans != 0 {
		t.Errorf("stitched trace has %d orphan spans, want 0:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Processes) != 2 {
		t.Errorf("stitched trace spans processes %v, want [cogd-local loadgen]:\n%s", st.Processes, st.Tree())
	}
	// The local server's request span must sit under the client's
	// local-fallback span, not float as a second root.
	for _, f := range payload.Traces {
		for _, sp := range f.Spans {
			if sp.Parent == -1 && sp.ParentID != fallback.SpanID {
				t.Errorf("local root span %q parented to %q, want the local-fallback span %q",
					sp.Name, sp.ParentID, fallback.SpanID)
			}
		}
	}
}

// TestMergedRegistryExpositionLint: a front-style deployment registers
// the server's cogg_* families, the artifact tier's cogg_blob_*, the
// SLO's cogg_slo_*, and the policy engine's cluster_* on one shared
// registry; the merged exposition must pass the lint (no duplicate or
// inconsistent HELP/TYPE, monotone buckets, valid exemplars).
func TestMergedRegistryExpositionLint(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := server.New(server.Options{Registry: reg, Process: "cogd-merged"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl, err := New(Options{
		Targets:       []string{ts.URL},
		ProbeInterval: -1,
		HedgeAfter:    -1,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One traced request so histograms and exemplar slots are populated.
	_, ctx := newClientTrace("merged")
	if res, err := cl.Do(ctx, "/v1/compile", "merged", compileBody(t, "merged.if")); err != nil || res.Status != 200 {
		t.Fatalf("compile: err=%v res=%+v", err, res)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.LintExposition(text); err != nil {
		t.Fatalf("merged exposition fails lint: %v\n%s", err, text)
	}
	for _, family := range []string{
		"cluster_attempts_total",
		"cluster_attempt_seconds_bucket",
		"cogg_blob_",
		"cogg_slo_burn_rate",
		"cogd_http_requests_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("merged exposition lacks %s series", family)
		}
	}
}

// TestFrontTraceEndToEnd: a request through the Front with caller-
// supplied trace headers. The front's proxy fragment must adopt the
// caller's trace ID and remote parent, the replica's fragment must hang
// under the front's attempt span, and the front must echo the trace ID
// so callers can find the stitched trace.
func TestFrontTraceEndToEnd(t *testing.T) {
	f := newNamedFleet(t, 2)
	cl, err := New(Options{Targets: f.urls, ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	front := NewFront(cl)
	front.SetProcess("front-e2e")
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	id := obs.NewTraceID()
	req, err := http.NewRequest("POST", fts.URL+"/v1/compile", strings.NewReader(string(compileBody(t, "e2e.if"))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(req.Header, id, "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceIDHeader); got != id {
		t.Errorf("front echoed trace ID %q, want %q", got, id)
	}

	frags := fleetFragments(t, append([]string{fts.URL}, f.urls...), id)
	st := obs.Stitch(frags)
	if st.ID != id {
		t.Fatalf("stitched ID = %s, want %s", st.ID, id)
	}
	if st.Orphans != 0 {
		t.Errorf("stitched trace has %d orphan spans, want 0:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Processes) < 2 {
		t.Errorf("stitched trace spans processes %v, want front + replica:\n%s", st.Processes, st.Tree())
	}
	hasFront, hasReplica := false, false
	for _, p := range st.Processes {
		if p == "front-e2e" {
			hasFront = true
		}
		if strings.HasPrefix(p, "cogd-") {
			hasReplica = true
		}
	}
	if !hasFront || !hasReplica {
		t.Errorf("processes %v lack front and replica", st.Processes)
	}
}
