package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"cogg/internal/fleet"
	"cogg/internal/obs"
)

// attemptRes is one attempt's outcome as the policy engine sees it:
// either a Result (any HTTP status) or a transport error, classified
// retryable or terminal.
type attemptRes struct {
	res        *Result
	err        error
	rep        *replica
	retryable  bool
	retryAfter time.Duration // server's Retry-After, when sent
	ctxErr     error         // the caller's context ended; not the replica's fault
	span       int           // the attempt's span index in the caller's trace, -1 untraced
}

// outcomeNote classifies one attempt's result for its span annotation.
func outcomeNote(ar attemptRes) string {
	switch {
	case ar.ctxErr != nil:
		return "canceled"
	case ar.err != nil:
		return "transport-error"
	case ar.res != nil && ar.retryable:
		return fmt.Sprintf("retryable-%d", ar.res.Status)
	case ar.res != nil:
		return fmt.Sprintf("status-%d", ar.res.Status)
	default:
		return "no-answer"
	}
}

// retryableStatus reports whether an HTTP answer may be re-sent
// elsewhere: backpressure (429) and server-side trouble (5xx) are;
// everything else — success, blocked parses (422), resource limits
// (413), bad requests — is the request's own answer wherever it runs.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// send performs one HTTP attempt against one replica, feeding the
// breaker and metrics. A cancellation caused by the caller (hedge win,
// request context done) is counted against nobody.
func (c *Client) send(ctx context.Context, rep *replica, path string, body []byte) attemptRes {
	actx := ctx
	if c.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		rep.br.CancelProbe() // admission consumed a probe slot; free it
		return attemptRes{err: err, rep: rep, retryable: false}
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the trace across the process edge: the context carries
	// this attempt's span, so the replica's server spans parent under
	// exactly this attempt — hedged duplicates get distinct parents.
	obs.InjectContext(actx, req.Header)
	c.m.attempts.Inc()
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context ended (or the hedge winner canceled
			// us): not evidence about the replica. Still release the
			// half-open probe slot this attempt may have consumed, or
			// the breaker would be stuck rejecting forever.
			rep.br.CancelProbe()
			c.m.replica(rep, "canceled").Inc()
			return attemptRes{err: err, rep: rep, retryable: true, ctxErr: ctx.Err()}
		}
		// Connection refused, reset, or the attempt timeout: the
		// replica is down or hanging. Breaker failure either way.
		rep.br.Failure()
		c.m.replica(rep, "transport").Inc()
		return attemptRes{err: err, rep: rep, retryable: true}
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			rep.br.CancelProbe()
			c.m.replica(rep, "canceled").Inc()
			return attemptRes{err: err, rep: rep, retryable: true, ctxErr: ctx.Err()}
		}
		// A partial response — the replica died (or was injected to
		// die) mid-write. Transport class, retryable.
		rep.br.Failure()
		c.m.replica(rep, "transport").Inc()
		return attemptRes{err: err, rep: rep, retryable: true}
	}
	retryable := retryableStatus(resp.StatusCode)
	if resp.StatusCode >= 500 {
		rep.br.Failure()
	} else {
		// 2xx/3xx/4xx (including 429 backpressure): the replica is
		// alive and answering coherently.
		rep.br.Success()
	}
	if retryable {
		c.m.replica(rep, "retryable").Inc()
	} else {
		c.m.replica(rep, "ok").Inc()
		c.lat.observe(elapsed)
	}
	if tr, _ := obs.FromContext(ctx); tr != nil {
		c.m.latency.ObserveExemplar(elapsed.Seconds(), tr.ID())
	} else {
		c.m.latency.ObserveDuration(elapsed)
	}
	return attemptRes{
		res: &Result{
			Status:     resp.StatusCode,
			Header:     resp.Header.Clone(),
			Body:       data,
			Replica:    rep.name,
			ReplicaIdx: rep.idx,
		},
		rep:        rep,
		retryable:  retryable,
		retryAfter: parseRetryAfter(resp.Header),
	}
}

// attemptHedged is one policy attempt: the primary request, plus —
// when hedge is set — a hedged duplicate to the next admissible
// replica if the primary outlives the hedge threshold. The first
// non-retryable answer wins and the loser is canceled; if both come
// back retryable the attempt as a whole is retryable. Returns the
// outcome and how many hedges fired.
func (c *Client) attemptHedged(ctx context.Context, primary *replica, order []*replica, path string, body []byte, hedge bool) (attemptRes, int) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each launched copy — primary or hedged duplicate — is its own
	// child span, opened here (synchronously, so it is in the tree even
	// if its goroutine is still in flight when the trace is exported)
	// and carried into send via the context so the wire headers name it
	// as the remote parent. spans collects the launched span indices;
	// when the race resolves, the winner and loser are annotated from
	// the resolving side so hedge-win/hedge-lose land before the
	// caller's snapshot, not whenever the canceled loser unwinds.
	tr, cur := obs.FromContext(ctx)
	var spans []int
	ch := make(chan attemptRes, 2)
	launch := func(rep *replica, kind string) {
		span := -1
		sctx := actx
		if tr != nil {
			span = tr.StartSpan("attempt:"+rep.name, cur)
			if kind != "" {
				tr.Annotate(span, kind)
			}
			sctx = obs.ContextWith(actx, tr, span)
		}
		spans = append(spans, span)
		go func() {
			ar := c.send(sctx, rep, path, body)
			ar.span = span
			if tr != nil {
				tr.Annotate(span, outcomeNote(ar))
				if ar.retryAfter > 0 {
					tr.Annotate(span, "retry-after="+ar.retryAfter.String())
				}
				tr.EndSpan(span)
			}
			ch <- ar
		}()
	}
	launch(primary, "")
	inflight := 1
	hedges := 0

	var hedgeC <-chan time.Time
	if hedge {
		if d := c.hedgeDelay(); d >= 0 {
			timer := time.NewTimer(d)
			defer timer.Stop()
			hedgeC = timer.C
		}
	}

	var lastRetryable attemptRes
	for {
		select {
		case ar := <-ch:
			inflight--
			if ar.ctxErr != nil && ctx.Err() != nil {
				return ar, hedges
			}
			if !ar.retryable {
				if hedges > 0 && ar.rep != primary {
					c.m.hedgeWins.Inc()
				}
				if tr != nil && len(spans) > 1 {
					tr.Annotate(ar.span, "hedge-win")
					for _, s := range spans {
						if s != ar.span {
							tr.Annotate(s, "hedge-lose")
						}
					}
				}
				return ar, hedges
			}
			lastRetryable = ar
			if inflight > 0 {
				continue // the other copy may still win
			}
			return lastRetryable, hedges
		case <-hedgeC:
			hedgeC = nil
			h := c.pick(order, 1, primary)
			if h != nil {
				hedges++
				c.m.hedges.Inc()
				launch(h, "hedge")
				inflight++
			}
		case <-ctx.Done():
			return attemptRes{ctxErr: ctx.Err(), retryable: true, span: -1}, hedges
		}
	}
}

// hedgeDelay resolves the hedge threshold: fixed when configured,
// otherwise the adaptive p99 of recent terminal-answer latencies,
// floored so a microsecond-fast warm cache cannot make every request
// hedge. Negative disables.
func (c *Client) hedgeDelay() time.Duration {
	switch {
	case c.opts.HedgeAfter < 0:
		return -1
	case c.opts.HedgeAfter > 0:
		return c.opts.HedgeAfter
	}
	const (
		floor   = 2 * time.Millisecond
		coldDef = 25 * time.Millisecond
	)
	p := c.lat.p99()
	if p <= 0 {
		return coldDef
	}
	if p < floor {
		return floor
	}
	return p
}

// backoff computes the sleep before retry number `try` (0-based):
// exponential ceiling with full jitter, never below the server's
// Retry-After when one was sent.
func (c *Client) backoff(try int, retryAfter time.Duration) time.Duration {
	ceil := c.opts.BaseBackoff << uint(try)
	if ceil > c.opts.MaxBackoff || ceil <= 0 {
		ceil = c.opts.MaxBackoff
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter delegates to the shared fleet-client implementation.
func parseRetryAfter(h http.Header) time.Duration {
	return fleet.ParseRetryAfter(h)
}

// latWindow is a sliding window of recent latencies for the adaptive
// hedge threshold. Observation is O(1) under a mutex; the p99 sorts a
// copy on demand, cached briefly so a request burst does not re-sort
// per request.
type latWindow struct {
	mu       sync.Mutex
	buf      []time.Duration
	n        int // filled entries
	idx      int // next write position
	count    int // total observations
	cached   time.Duration
	cachedAt int // count when cached was computed
}

func newLatWindow(size int) *latWindow {
	return &latWindow{buf: make([]time.Duration, size)}
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.count++
	w.mu.Unlock()
}

// p99 returns the 99th percentile of the window, or 0 when empty.
func (w *latWindow) p99() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	if w.cachedAt > 0 && w.count-w.cachedAt < 16 {
		return w.cached
	}
	tmp := make([]time.Duration, w.n)
	copy(tmp, w.buf[:w.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	w.cached = tmp[(len(tmp)-1)*99/100]
	w.cachedAt = w.count
	return w.cached
}
