package blob

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ArtifactHandler serves the cogd artifact API over a local store:
//
//	GET  /v1/artifacts/{key}   the payload; ETag is the content digest,
//	                           If-None-Match answers 304 without a body
//	HEAD /v1/artifacts/{key}   existence + ETag + Content-Length
//	PUT  /v1/artifacts/{key}   store a payload; the X-Blob-Content-Sha256
//	                           header, when sent, is checked against the
//	                           received body so wire corruption is
//	                           rejected, never stored
//
// The store handed in must be the replica's LOCAL tiers only (memory +
// disk, never a Remote over other peers): two replicas pointing at each
// other would otherwise bounce a missing key back and forth forever. A
// verify failure on read answers 404 with an X-Blob-Verify: failed
// header — the corrupt entry was quarantined by the backend, and to the
// fetching peer an unservable blob is a miss.
//
// maxBytes caps an accepted PUT body; <= 0 means 64 MiB.
func ArtifactHandler(store Store, maxBytes int64) http.Handler {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, ArtifactPathPrefix)
		if !ValidKey(key) {
			http.Error(w, "artifact key must be 64 hex digits", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			serveGet(w, r, store, key)
		case http.MethodHead:
			serveHead(w, r, store, key)
		case http.MethodPut:
			servePut(w, r, store, key, maxBytes)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func serveGet(w http.ResponseWriter, r *http.Request, store Store, key string) {
	// Stat first: a conditional GET whose ETag still matches costs a
	// header read, not a payload read (and no re-verification — the
	// requester's copy is the one being vouched for).
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if info, err := store.Stat(r.Context(), key); err == nil && etagMatch(inm, info.Content) {
			w.Header().Set("ETag", ETagFor(info.Content))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	payload, err := store.Get(r.Context(), key)
	if err != nil {
		writeGetErr(w, err)
		return
	}
	content := Sum(payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", ETagFor(content))
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	_, _ = w.Write(payload)
}

func writeGetErr(w http.ResponseWriter, err error) {
	var verr *VerifyError
	switch {
	case errors.As(err, &verr):
		// Quarantined by the backend; to the peer this key has nothing
		// servable behind it.
		w.Header().Set("X-Blob-Verify", "failed")
		http.Error(w, "artifact failed verification and was quarantined", http.StatusNotFound)
	case errors.Is(err, ErrNotFound):
		http.Error(w, "no such artifact", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func serveHead(w http.ResponseWriter, r *http.Request, store Store, key string) {
	info, err := store.Stat(r.Context(), key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			w.WriteHeader(http.StatusNotFound)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", ETagFor(info.Content))
	w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
	w.WriteHeader(http.StatusOK)
}

func servePut(w http.ResponseWriter, r *http.Request, store Store, key string, maxBytes int64) {
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if want := r.Header.Get(ContentDigestHeader); want != "" {
		if got := Sum(payload); !strings.EqualFold(want, got) {
			http.Error(w, fmt.Sprintf("body digest %.12s does not match %s %.12s (corrupted in transit?)",
				got, ContentDigestHeader, want), http.StatusBadRequest)
			return
		}
	}
	if err := store.Put(r.Context(), key, payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// etagMatch implements the If-None-Match comparison against a content
// digest: "*" matches anything present, otherwise any listed ETag whose
// digest equals the stored one.
func etagMatch(header, content string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if etagDigest(strings.TrimSpace(part)) == content {
			return true
		}
	}
	return false
}
