package blob

import (
	"container/list"
	"context"
	"sync"
	"time"

	"cogg/internal/faultinject"
)

// Mem is the in-memory backend: a bounded LRU of payloads with their
// content digests. It is the L1 tier under every replica and the whole
// store in tests — and, crucially, the tier that lets a disk-less
// replica still serve the artifact API: a module built anywhere lands
// here, so peers can warm-fetch from a replica with no cache directory.
type Mem struct {
	mu       sync.Mutex
	maxBytes int64
	maxEntry int
	bytes    int64
	order    *list.List // front = most recent; values are *memEntry
	byKey    map[string]*list.Element

	verifyFails int64 // entries dropped on content-digest mismatch
}

type memEntry struct {
	key     string
	content string
	payload []byte
	added   time.Time
}

// NewMem builds a Mem bounded by entry count and total payload bytes;
// maxEntries <= 0 means 64 and maxBytes <= 0 means 256 MiB.
func NewMem(maxEntries int, maxBytes int64) *Mem {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Mem{
		maxEntry: maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		byKey:    map[string]*list.Element{},
	}
}

// Get returns a copy-free reference to the stored payload. Payloads are
// immutable by contract (callers must not mutate what Get returns), the
// same contract the decoded-module LRU above this tier relies on.
func (m *Mem) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := faultinject.Eval("blob/get", key); err != nil {
		return nil, err
	}
	m.mu.Lock()
	el, ok := m.byKey[key]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	e := el.Value.(*memEntry)
	m.order.MoveToFront(el)
	payload, content := e.payload, e.content
	m.mu.Unlock()

	if verr := verifyPayload("mem", key, content, payload); verr != nil {
		// Quarantine for the memory tier is eviction: the corrupt copy
		// must not be served again, and there is no file to set aside.
		m.mu.Lock()
		if el, ok := m.byKey[key]; ok && el.Value.(*memEntry).content == content {
			m.remove(el)
		}
		m.verifyFails++
		m.mu.Unlock()
		return nil, verr
	}
	return payload, nil
}

func (m *Mem) Put(ctx context.Context, key string, payload []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := faultinject.Eval("blob/put", key); err != nil {
		return err
	}
	// Copy on the way in: the caller keeps ownership of its slice.
	own := make([]byte, len(payload))
	copy(own, payload)
	e := &memEntry{key: key, content: Sum(own), payload: own, added: time.Now()}

	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.bytes -= int64(len(el.Value.(*memEntry).payload))
		el.Value = e
		m.bytes += int64(len(own))
		m.order.MoveToFront(el)
	} else {
		m.byKey[key] = m.order.PushFront(e)
		m.bytes += int64(len(own))
	}
	for m.order.Len() > m.maxEntry || (m.bytes > m.maxBytes && m.order.Len() > 1) {
		m.remove(m.order.Back())
	}
	return nil
}

func (m *Mem) Stat(ctx context.Context, key string) (Info, error) {
	if err := ctxErr(ctx); err != nil {
		return Info{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		return Info{}, ErrNotFound
	}
	e := el.Value.(*memEntry)
	return Info{Key: key, Content: e.content, Size: int64(len(e.payload)), ModTime: e.added}, nil
}

func (m *Mem) List(ctx context.Context) ([]Info, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	infos := make([]Info, 0, len(m.byKey))
	for el := m.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*memEntry)
		infos = append(infos, Info{Key: e.key, Content: e.content, Size: int64(len(e.payload)), ModTime: e.added})
	}
	return infos, nil
}

func (m *Mem) Delete(ctx context.Context, key string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.remove(el)
	}
	return nil
}

// VerifyFailures reports entries dropped on content-digest mismatch.
func (m *Mem) VerifyFailures() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.verifyFails
}

// remove unlinks one element; callers hold the lock.
func (m *Mem) remove(el *list.Element) {
	e := el.Value.(*memEntry)
	m.order.Remove(el)
	delete(m.byKey, e.key)
	m.bytes -= int64(len(e.payload))
}

// corruptForTest flips one payload byte in place — the hook the
// corruption tests use to prove a poisoned memory entry is never
// served. Returns false when the key is absent.
func (m *Mem) corruptForTest(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		return false
	}
	e := el.Value.(*memEntry)
	if len(e.payload) == 0 {
		return false
	}
	e.payload[len(e.payload)/2] ^= 0x40
	return true
}
