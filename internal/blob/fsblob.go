package blob

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cogg/internal/faultinject"
)

// fsMagic heads every on-disk blob envelope; bumping it orphans every
// entry written under the old layout (they fail the header parse and
// are treated as corrupt).
const fsMagic = "coggblob1"

// blobExt / quarantineExt / tmpGlob are the FS backend's file-name
// scheme: "<key>.blob" entries, "<key>.quarantine" entries set aside by
// a failed verify, and "<key>.tmp*" in-flight writes.
const (
	blobExt       = ".blob"
	quarantineExt = ".quarantine"
)

// FS is the disk backend: one file per blob under dir, each an envelope
//
//	coggblob1 <content-sha256-hex> <payload-size>\n<payload>
//
// written with the crash-safe protocol the batch service's disk cache
// pioneered — temp file, fsync, rename, directory fsync — so neither a
// crashed writer nor a power cut can leave a half-written entry at the
// final name. A shared directory is the zero-copy fleet tier: replicas
// on one host (or one mount) pointing at the same dir share every
// module and deck without a network hop.
type FS struct {
	dir string

	orphansSwept atomic.Int64
	verifyFails  atomic.Int64
	quarantined  atomic.Int64
}

// NewFS opens (creating lazily on first Put) a disk store under dir and
// sweeps orphaned temp files old enough that no live writer can still
// own them.
func NewFS(dir string) *FS {
	fs := &FS{dir: dir}
	fs.SweepOrphans()
	return fs
}

// Dir reports the backing directory.
func (f *FS) Dir() string { return f.dir }

func (f *FS) path(key string) string { return filepath.Join(f.dir, key+blobExt) }

func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := faultinject.Eval("blob/get", key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	content, payload, err := parseEnvelope(data)
	if err != nil {
		// An unparseable envelope is corruption of a different shade:
		// quarantine it too, with the zero digest standing in for the
		// unreadable recorded one.
		f.quarantine(key)
		f.verifyFails.Add(1)
		return nil, &VerifyError{Backend: "fs", Key: key, Want: "unreadable-envelope", Got: Sum(data)}
	}
	if verr := verifyPayload("fs", key, content, payload); verr != nil {
		f.quarantine(key)
		f.verifyFails.Add(1)
		return nil, verr
	}
	return payload, nil
}

// parseEnvelope splits "coggblob1 <content> <size>\n<payload>" and
// checks the recorded size against the bytes present (a short file is
// truncation the rename protocol should have prevented — still caught).
func parseEnvelope(data []byte) (content string, payload []byte, err error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return "", nil, fmt.Errorf("blob: no envelope header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != fsMagic || !ValidKey(fields[1]) {
		return "", nil, fmt.Errorf("blob: bad envelope header")
	}
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || size < 0 {
		return "", nil, fmt.Errorf("blob: bad envelope size")
	}
	payload = data[nl+1:]
	if int64(len(payload)) != size {
		return "", nil, fmt.Errorf("blob: envelope size %d, payload %d", size, len(payload))
	}
	return fields[1], payload, nil
}

// quarantine sets a corrupt entry aside under its quarantine name —
// served never, deleted never (an operator or `cogg cache verify` can
// inspect it; `cogg cache gc` reports but keeps it). A second
// quarantine of the same key overwrites the first: same key, same
// derivation, and the newest corpse is the interesting one.
func (f *FS) quarantine(key string) {
	if os.Rename(f.path(key), filepath.Join(f.dir, key+quarantineExt)) == nil {
		f.quarantined.Add(1)
	}
}

func (f *FS) Put(ctx context.Context, key string, payload []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := faultinject.Eval("blob/put", key); err != nil {
		return err
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Grow(len(payload) + 96)
	fmt.Fprintf(&buf, "%s %s %d\n", fsMagic, Sum(payload), len(payload))
	buf.Write(payload)

	tmp, err := os.CreateTemp(f.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// The data must be durable before the rename publishes the name:
	// otherwise a power cut can leave the final name pointing at blocks
	// that never reached the disk.
	if err := faultinject.Eval("blob/fs/sync", key); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := faultinject.Eval("blob/fs/rename", key); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), f.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// And the rename itself must be durable: fsync the directory so the
	// new entry survives a crash. A failure here degrades, not corrupts
	// — the entry is good, its durability just is not proven.
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

func (f *FS) Stat(ctx context.Context, key string) (Info, error) {
	if err := ctxErr(ctx); err != nil {
		return Info{}, err
	}
	return f.statPath(f.path(key), key)
}

// statPath reads just the envelope header of one entry.
func (f *FS) statPath(path, key string) (Info, error) {
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Info{}, ErrNotFound
		}
		return Info{}, err
	}
	defer file.Close()
	fi, err := file.Stat()
	if err != nil {
		return Info{}, err
	}
	header, err := bufio.NewReaderSize(file, 256).ReadString('\n')
	if err != nil {
		return Info{}, fmt.Errorf("blob: %s: unreadable envelope: %w", short(key), err)
	}
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 3 || fields[0] != fsMagic {
		return Info{}, fmt.Errorf("blob: %s: bad envelope header", short(key))
	}
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return Info{}, fmt.Errorf("blob: %s: bad envelope size", short(key))
	}
	return Info{Key: key, Content: fields[1], Size: size, ModTime: fi.ModTime()}, nil
}

func (f *FS) List(ctx context.Context) ([]Info, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	matches, err := filepath.Glob(filepath.Join(f.dir, "*"+blobExt))
	if err != nil {
		return nil, err
	}
	infos := make([]Info, 0, len(matches))
	for _, path := range matches {
		key := strings.TrimSuffix(filepath.Base(path), blobExt)
		if !ValidKey(key) {
			continue
		}
		info, err := f.statPath(path, key)
		if err != nil {
			// A corrupt header still enumerates — `cogg cache verify`
			// needs to see it to quarantine it.
			info = Info{Key: key}
			if fi, serr := os.Stat(path); serr == nil {
				info.Size, info.ModTime = fi.Size(), fi.ModTime()
			}
		}
		infos = append(infos, info)
	}
	return infos, nil
}

func (f *FS) Delete(ctx context.Context, key string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	err := os.Remove(f.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// orphanMinAge guards the startup sweep against reaping a temp file a
// concurrent writer in another process is about to rename: only temps
// old enough that no live write can still own them are reclaimed.
const orphanMinAge = time.Minute

// SweepOrphans removes stale "*.tmp*" files left by writers that
// crashed between CreateTemp and Rename, returning how many it
// reclaimed. The atomic-rename protocol guarantees orphans are
// invisible to Get, so this is hygiene (disk space, inode clutter), not
// correctness. Runs once at construction; callable again any time.
func (f *FS) SweepOrphans() int64 {
	if f.dir == "" {
		return 0
	}
	matches, err := filepath.Glob(filepath.Join(f.dir, "*.tmp*"))
	if err != nil {
		return 0
	}
	var swept int64
	now := time.Now()
	for _, path := range matches {
		fi, err := os.Stat(path)
		if err != nil || now.Sub(fi.ModTime()) < orphanMinAge {
			continue
		}
		if os.Remove(path) == nil {
			swept++
		}
	}
	f.orphansSwept.Add(swept)
	return swept
}

// OrphansSwept reports temp files reclaimed over this store's lifetime.
func (f *FS) OrphansSwept() int64 { return f.orphansSwept.Load() }

// VerifyFailures reports entries that failed content-digest
// re-verification (each was quarantined).
func (f *FS) VerifyFailures() int64 { return f.verifyFails.Load() }

// Quarantined reports entries renamed aside after failing verification.
func (f *FS) Quarantined() int64 { return f.quarantined.Load() }

// QuarantineFiles lists quarantined entries under the directory — what
// `cogg cache ls` prints and the corruption tests assert on.
func (f *FS) QuarantineFiles() []string {
	matches, _ := filepath.Glob(filepath.Join(f.dir, "*"+quarantineExt))
	return matches
}
