// Package blob is the content-addressed artifact tier: one namespace of
// immutable byte blobs — encoded table modules, compiled card decks —
// keyed by hex SHA-256 digests and shared across a fleet of cogd
// replicas, so the paper's expensive artifact (the SLR driving tables)
// is built once anywhere and reused everywhere.
//
// A Store is a flat digest-keyed byte store. Three backends implement
// it:
//
//   - Mem: a bounded in-memory LRU — the L1 tier, and the whole store
//     in tests and disk-less replicas (it is what lets a peer fetch a
//     module from a replica that has no cache directory at all);
//   - FS: one file per blob under a directory, written with the
//     crash-safe fsync+rename+dir-fsync protocol and swept for orphaned
//     temp files at startup — the refactor of the batch service's
//     original disk cache into a reusable backend;
//   - Remote (package-internal name: httpblob): a cogd peer speaking
//     the artifact API (GET/PUT/HEAD /v1/artifacts/{digest}) with
//     digest ETags, conditional GET, client-side singleflight, and the
//     cluster tier's breaker/backoff policy.
//
// Tiered layers them read-through/write-through: a Get that misses the
// memory tier falls to disk, then to the fleet, promoting hits upward;
// a Put writes through every tier it can reach.
//
// # Keys and integrity
//
// A key names an artifact; it is the hex SHA-256 of what the artifact
// was derived from (for table modules: format version + spec name +
// spec bytes — see DigestModule, the single owner of the PR 1 cache
// key). The key is therefore content-addressed in the derivation sense
// but is not the hash of the stored bytes. Every stored blob carries a
// separate content digest — the hex SHA-256 of its payload — in its
// disk envelope and as its HTTP ETag, and every read re-verifies the
// payload against it. A mismatch is never served and never silently
// deleted: the backend quarantines the entry (FS renames it aside; Mem
// drops it; Remote leaves the peer's copy to the peer's own next read),
// returns a *VerifyError, and the caller falls through to the next tier
// or rebuilds from source.
package blob

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"cogg/internal/faultinject"
)

// ErrNotFound reports a key with no blob behind it — the cache-miss
// answer, distinct from infrastructure trouble.
var ErrNotFound = errors.New("blob: not found")

// VerifyError reports a blob whose payload no longer hashes to its
// recorded content digest: disk rot, a truncated write that slipped
// past the crash protocol, or wire corruption. The entry has been
// quarantined by the backend that found it, not deleted.
type VerifyError struct {
	Backend string // "mem", "fs", "http"
	Key     string
	Want    string // recorded content digest
	Got     string // digest of the bytes actually read
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("blob: %s: %s: content digest mismatch (want %.12s, got %.12s)",
		e.Backend, short(e.Key), e.Want, e.Got)
}

// Info describes one stored blob.
type Info struct {
	Key     string    // the blob's digest key
	Content string    // hex SHA-256 of the payload
	Size    int64     // payload bytes
	ModTime time.Time // backend-dependent; zero when unknown
}

// Store is a flat content-addressed byte store. Implementations must be
// safe for concurrent use. Get re-verifies the payload against its
// recorded content digest on every read and returns *VerifyError —
// never the corrupt bytes — on mismatch. Keys are hex SHA-256 digests
// (see ValidKey); behavior under other keys is unspecified.
type Store interface {
	// Get returns the payload under key, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Put stores payload under key. Puts are idempotent: re-putting an
	// existing key overwrites (the payload for a key is derived
	// deterministically, so overwrites are byte-identical in practice).
	Put(ctx context.Context, key string, payload []byte) error
	// Stat describes the blob under key without reading its payload, or
	// returns ErrNotFound.
	Stat(ctx context.Context, key string) (Info, error)
	// List enumerates every stored blob. Remote backends may decline
	// with an error; local backends must not.
	List(ctx context.Context) ([]Info, error)
	// Delete removes the blob under key; deleting a missing key is not
	// an error.
	Delete(ctx context.Context, key string) error
}

// Sum is the content digest of a payload: hex SHA-256 over the raw
// bytes.
func Sum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// DigestParts derives a key from an ordered list of parts: hex SHA-256
// over each part prefixed by its little-endian 64-bit length, so part
// boundaries can never be confused ("ab","c" and "a","bc" digest
// differently).
func DigestParts(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, part := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestModule derives the table-module cache key — the PR 1 key, now
// owned here: hex SHA-256 over the module format version, the
// specification name, and the specification bytes. All three matter for
// staleness:
//
//   - a one-byte edit to the spec source must miss,
//   - two specs with identical text but different names are distinct
//     artifacts (diagnostics embed the name), and
//   - a format-version bump must orphan every module serialized under
//     the old encoding.
func DigestModule(version, name string, specBytes []byte) string {
	return DigestParts(version, name, string(specBytes))
}

// ValidKey reports whether key is a well-formed blob key: 64 lowercase
// hex digits. The artifact HTTP API rejects anything else before
// touching a backend, which is also what keeps keys path-safe.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// verifyPayload re-hashes a payload against its recorded content digest
// under the blob/verify failpoint; a non-nil return is the
// *VerifyError the backend must surface after quarantining the entry.
func verifyPayload(backend, key, content string, payload []byte) *VerifyError {
	got := Sum(payload)
	if err := faultinject.Eval("blob/verify", key); err != nil {
		return &VerifyError{Backend: backend, Key: key, Want: content, Got: "injected:" + got[:8]}
	}
	if got != content {
		return &VerifyError{Backend: backend, Key: key, Want: content, Got: got}
	}
	return nil
}

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// ctxErr surfaces a context already over deadline so backends bail
// before doing work; plain stores are otherwise synchronous.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
