package blob

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"cogg/internal/faultinject"
	"cogg/internal/fleet"
	"cogg/internal/obs"
)

// ArtifactPathPrefix is the cogd artifact API mount point; a blob key
// appended to it names one artifact: GET/PUT/HEAD /v1/artifacts/{key}.
const ArtifactPathPrefix = "/v1/artifacts/"

// ContentDigestHeader carries the payload's expected content digest on
// a PUT, so a body corrupted on the wire is rejected at the door
// instead of being stored self-consistently under the wrong bytes.
const ContentDigestHeader = "X-Blob-Content-Sha256"

// RemoteOptions configure a Remote.
type RemoteOptions struct {
	// Peers are base URLs of cogd replicas (or fronts) serving the
	// artifact API, tried in order on Get and first-available on Put.
	Peers []string
	// Client is the HTTP client; nil uses a pooled default.
	Client *http.Client
	// AttemptTimeout bounds one HTTP attempt; <= 0 means 2s — artifact
	// fetches race a ~20ms local rebuild, so a hanging peer must lose
	// quickly.
	AttemptTimeout time.Duration
	// Retries is how many extra attempts a retryable failure (transport
	// error, 429, 5xx) earns per peer; <= 0 means 1.
	Retries int
	// BaseBackoff/MaxBackoff shape the jittered retry schedule;
	// defaults 25ms/250ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive failures trip a peer's breaker open
	// for BreakerCooldown; defaults 3 and 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logf, when set, receives the warm-fetch lines ("blob: warm fetch
	// <key> from <peer> ..."); nil logs nothing.
	Logf func(format string, args ...any)
}

// Remote is the fleet backend: a Store over cogd peers speaking the
// artifact API. Reads singleflight per key (a cold replica's first
// requests all want the same module; one fetch serves them all), walk
// the peers in order behind per-peer circuit breakers, retry retryable
// failures on the cluster tier's jittered schedule honoring
// Retry-After, and re-verify every payload against its digest ETag —
// wire corruption is indistinguishable from disk corruption and gets
// the same answer. Writes are best-effort publications: the first
// admissible peer gets the blob, deduplicated by a HEAD whose ETag
// already matches.
type Remote struct {
	peers []*remotePeer
	hc    *http.Client
	opts  RemoteOptions

	mu       sync.Mutex
	inflight map[string]*remoteCall
}

type remotePeer struct {
	url string
	br  *fleet.Breaker
}

type remoteCall struct {
	done    chan struct{}
	payload []byte
	err     error
}

// NewRemote builds a Remote over the given peers.
func NewRemote(opts RemoteOptions) *Remote {
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 2 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 1
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 25 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 250 * time.Millisecond
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	r := &Remote{hc: hc, opts: opts, inflight: map[string]*remoteCall{}}
	for _, u := range opts.Peers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		r.peers = append(r.peers, &remotePeer{
			url: u,
			br:  fleet.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	return r
}

// Peers reports the configured peer URLs.
func (r *Remote) Peers() []string {
	urls := make([]string, len(r.peers))
	for i, p := range r.peers {
		urls[i] = p.url
	}
	return urls
}

func (r *Remote) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Get fetches one blob from the fleet. Concurrent Gets for the same key
// collapse into one fetch.
func (r *Remote) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := faultinject.Eval("blob/get", key); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
			return c.payload, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &remoteCall{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	c.payload, c.err = r.getSlow(ctx, key)
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(c.done)
	return c.payload, c.err
}

// getSlow is the uncollapsed fetch: peers in order, retries within each.
func (r *Remote) getSlow(ctx context.Context, key string) ([]byte, error) {
	var firstErr error
	note := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for _, p := range r.peers {
		payload, err := r.getFrom(ctx, p, key)
		if err == nil {
			return payload, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, ErrNotFound) {
			note(err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNotFound
}

// getFrom fetches from one peer with the retry schedule.
func (r *Remote) getFrom(ctx context.Context, p *remotePeer, key string) ([]byte, error) {
	var lastErr error
	for try := 0; try <= r.opts.Retries; try++ {
		if try > 0 {
			select {
			case <-time.After(fleet.BackoffDelay(try-1, r.opts.BaseBackoff, r.opts.MaxBackoff, retryAfterOf(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if !p.br.Allow() {
			return nil, fmt.Errorf("blob: peer %s: breaker open", p.url)
		}
		payload, err, retryable := r.attemptGet(ctx, p, key)
		if err == nil {
			return payload, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// retryableError wraps a retryable failure carrying the server's
// Retry-After hint into the backoff computation.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func retryAfterOf(err error) time.Duration {
	var re *retryableError
	if errors.As(err, &re) {
		return re.retryAfter
	}
	return 0
}

// attemptGet is one GET against one peer, feeding its breaker.
func (r *Remote) attemptGet(ctx context.Context, p *remotePeer, key string) (payload []byte, err error, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
	defer cancel()
	// When the read happens inside a traced request (a deck cache miss
	// warm-fetching a peer), the peer fetch is a child span and the
	// peer's artifact handler — which records its own server fragment —
	// parents under it via the injected headers. Singleflight followers
	// share the leader's fetch, so only the leader's trace carries it.
	tr, parent := obs.FromContext(ctx)
	span := -1
	if tr != nil {
		span = tr.StartSpan("blob-get:"+p.url, parent)
		defer func() {
			switch {
			case err == nil:
				tr.Annotate(span, "warm-fetch")
			case errors.Is(err, ErrNotFound):
				tr.Annotate(span, "peer-miss")
			case retryable:
				tr.Annotate(span, "retryable-error")
			default:
				tr.Annotate(span, "error")
			}
			tr.EndSpan(span)
		}()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, p.url+ArtifactPathPrefix+key, nil)
	if err != nil {
		p.br.CancelProbe()
		return nil, err, false
	}
	if tr != nil {
		obs.Inject(req.Header, tr.ID(), tr.SpanID(span))
	}
	t0 := time.Now()
	resp, err := r.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			p.br.CancelProbe()
			return nil, ctx.Err(), false
		}
		p.br.Failure()
		return nil, fmt.Errorf("blob: peer %s: %w", p.url, err), true
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		if ctx.Err() != nil {
			p.br.CancelProbe()
			return nil, ctx.Err(), false
		}
		p.br.Failure()
		return nil, fmt.Errorf("blob: peer %s: read body: %w", p.url, err), true
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		p.br.Success()
		want := etagDigest(resp.Header.Get("ETag"))
		if want == "" {
			// A peer that serves artifacts without a digest ETag gives us
			// nothing to verify against; refuse the bytes rather than
			// trust them unverified.
			return nil, fmt.Errorf("blob: peer %s: artifact answer carries no digest ETag", p.url), false
		}
		if verr := verifyPayload("http", key, want, body); verr != nil {
			// The corrupt copy is the peer's to quarantine on its own next
			// read; our job is to never hand it upward.
			return nil, verr, false
		}
		r.logf("blob: warm fetch %s from %s (%d bytes, %s)", short(key), p.url, len(body), time.Since(t0).Round(time.Microsecond))
		return body, nil, false
	case resp.StatusCode == http.StatusNotFound:
		p.br.Success() // a coherent miss is a healthy peer
		return nil, ErrNotFound, false
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		if resp.StatusCode >= 500 {
			p.br.Failure()
		} else {
			p.br.Success()
		}
		return nil, &retryableError{
			err:        fmt.Errorf("blob: peer %s: status %d", p.url, resp.StatusCode),
			retryAfter: fleet.ParseRetryAfter(resp.Header),
		}, true
	default:
		p.br.Success()
		return nil, fmt.Errorf("blob: peer %s: status %d", p.url, resp.StatusCode), false
	}
}

// Put publishes one blob to the first admissible peer, deduplicated by
// a HEAD: a peer already holding identical content (digest ETag match)
// costs one round trip and no body.
func (r *Remote) Put(ctx context.Context, key string, payload []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := faultinject.Eval("blob/put", key); err != nil {
		return err
	}
	sum := Sum(payload)
	var lastErr error
	for _, p := range r.peers {
		if !p.br.Allow() {
			lastErr = fmt.Errorf("blob: peer %s: breaker open", p.url)
			continue
		}
		err := r.putTo(ctx, p, key, sum, payload)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("blob: no peers configured")
	}
	return lastErr
}

func (r *Remote) putTo(ctx context.Context, p *remotePeer, key, sum string, payload []byte) (err error) {
	actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
	defer cancel()

	tr, parent := obs.FromContext(ctx)
	span := -1
	if tr != nil {
		span = tr.StartSpan("blob-put:"+p.url, parent)
		defer func() {
			if err != nil {
				tr.Annotate(span, "error")
			}
			tr.EndSpan(span)
		}()
	}

	// HEAD first: identical content already there means no body to send.
	head, err := http.NewRequestWithContext(actx, http.MethodHead, p.url+ArtifactPathPrefix+key, nil)
	if err != nil {
		p.br.CancelProbe()
		return err
	}
	if resp, err := r.hc.Do(head); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && etagDigest(resp.Header.Get("ETag")) == sum {
			p.br.Success()
			if tr != nil {
				tr.Annotate(span, "dedup")
			}
			return nil
		}
	}

	req, err := http.NewRequestWithContext(actx, http.MethodPut, p.url+ArtifactPathPrefix+key, bytes.NewReader(payload))
	if err != nil {
		p.br.CancelProbe()
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(ContentDigestHeader, sum)
	if tr != nil {
		obs.Inject(req.Header, tr.ID(), tr.SpanID(span))
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			p.br.CancelProbe()
			return ctx.Err()
		}
		p.br.Failure()
		return fmt.Errorf("blob: peer %s: %w", p.url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		p.br.Failure()
		return fmt.Errorf("blob: peer %s: put status %d", p.url, resp.StatusCode)
	}
	p.br.Success()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("blob: peer %s: put status %d", p.url, resp.StatusCode)
	}
	return nil
}

// Stat HEADs the peers in order.
func (r *Remote) Stat(ctx context.Context, key string) (Info, error) {
	if err := ctxErr(ctx); err != nil {
		return Info{}, err
	}
	var lastErr error
	for _, p := range r.peers {
		if !p.br.Allow() {
			lastErr = fmt.Errorf("blob: peer %s: breaker open", p.url)
			continue
		}
		actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
		req, err := http.NewRequestWithContext(actx, http.MethodHead, p.url+ArtifactPathPrefix+key, nil)
		if err != nil {
			cancel()
			p.br.CancelProbe()
			return Info{}, err
		}
		resp, err := r.hc.Do(req)
		cancel()
		if err != nil {
			p.br.Failure()
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			p.br.Success()
			return Info{Key: key, Content: etagDigest(resp.Header.Get("ETag")), Size: resp.ContentLength}, nil
		case http.StatusNotFound:
			p.br.Success()
			lastErr = ErrNotFound
		default:
			if resp.StatusCode >= 500 {
				p.br.Failure()
			} else {
				p.br.Success()
			}
			lastErr = fmt.Errorf("blob: peer %s: head status %d", p.url, resp.StatusCode)
		}
	}
	if lastErr == nil {
		lastErr = ErrNotFound
	}
	return Info{}, lastErr
}

// List is unsupported remotely: the artifact API is keyed access, and
// enumerating a fleet belongs to the index sidecar, not a peer walk.
func (r *Remote) List(ctx context.Context) ([]Info, error) {
	return nil, errors.New("blob: remote store does not enumerate")
}

// Delete is a local decision: a replica never reaches into its peers'
// stores. Dropping a remote tier's entry is a no-op by design.
func (r *Remote) Delete(ctx context.Context, key string) error { return nil }

// BreakerStates reports each peer's breaker position, for /varz-style
// snapshots and tests.
func (r *Remote) BreakerStates() map[string]string {
	states := make(map[string]string, len(r.peers))
	for _, p := range r.peers {
		states[p.url] = p.br.State().String()
	}
	return states
}

// etagDigest extracts the content digest from a digest ETag: strong or
// weak quoting stripped, anything that is not a digest rejected.
func etagDigest(etag string) string {
	etag = strings.TrimPrefix(etag, "W/")
	etag = strings.Trim(etag, `"`)
	if !ValidKey(etag) {
		return ""
	}
	return etag
}

// ETagFor renders a content digest as the quoted strong ETag the
// artifact API sends.
func ETagFor(content string) string { return `"` + content + `"` }
