package blob

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cogg/internal/obs"
)

// Counters instrument one backend of a store: hit/miss/fetch-latency on
// the read path, put traffic, and verify failures. They accumulate in
// plain atomics so tests read them directly; Register bridges them into
// an obs.Registry as the cogg_blob_* series at exposition time,
// following the batch service's no-second-counter pattern.
type Counters struct {
	Hits         atomic.Int64
	Misses       atomic.Int64
	GetErrs      atomic.Int64 // infrastructure failures (not misses, not verify)
	Puts         atomic.Int64
	PutErrs      atomic.Int64
	PutBytes     atomic.Int64
	VerifyFails  atomic.Int64
	FetchNanos   atomic.Int64 // wall time summed over successful Gets
	fetchSeconds *obs.Histogram
}

// Register binds the counters into reg under the given backend label:
//
//	cogg_blob_hits_total{backend}             payloads served
//	cogg_blob_misses_total{backend}           keys with no blob behind them
//	cogg_blob_get_errors_total{backend}       reads lost to infrastructure
//	cogg_blob_puts_total{backend}             payloads stored
//	cogg_blob_put_errors_total{backend}       stores that failed
//	cogg_blob_put_bytes_total{backend}        payload bytes stored
//	cogg_blob_verify_failures_total{backend}  content-digest mismatches (quarantined)
//	cogg_blob_fetch_seconds_total{backend}    wall time summed over hits
//	cogg_blob_fetch_seconds{backend}          fetch-latency histogram
func (c *Counters) Register(reg *obs.Registry, backend string) {
	if reg == nil {
		return
	}
	l := obs.L("backend", backend)
	reg.CounterFunc("cogg_blob_hits_total",
		"Blob-store payloads served, by backend.", l, c.Hits.Load)
	reg.CounterFunc("cogg_blob_misses_total",
		"Blob-store lookups that found no blob, by backend.", l, c.Misses.Load)
	reg.CounterFunc("cogg_blob_get_errors_total",
		"Blob-store reads lost to infrastructure faults, by backend.", l, c.GetErrs.Load)
	reg.CounterFunc("cogg_blob_puts_total",
		"Blob-store payloads stored, by backend.", l, c.Puts.Load)
	reg.CounterFunc("cogg_blob_put_errors_total",
		"Blob-store writes that failed, by backend.", l, c.PutErrs.Load)
	reg.CounterFunc("cogg_blob_put_bytes_total",
		"Blob-store payload bytes stored, by backend.", l, c.PutBytes.Load)
	reg.CounterFunc("cogg_blob_verify_failures_total",
		"Blobs that failed content-digest re-verification and were quarantined, by backend.",
		l, c.VerifyFails.Load)
	reg.CounterFloatFunc("cogg_blob_fetch_seconds_total",
		"Wall time summed over successful blob fetches, by backend.", l,
		func() float64 { return float64(c.FetchNanos.Load()) / 1e9 })
	c.fetchSeconds = reg.Histogram("cogg_blob_fetch_seconds",
		"Blob fetch latency by backend, in seconds.", l, obs.LatencyBuckets)
}

// WithCounters decorates a store so every operation lands in c. Wrap
// each tier separately (before layering with NewTiered) to get
// per-backend series out of one logical store.
func WithCounters(s Store, c *Counters) Store {
	return &instrumented{inner: s, c: c}
}

type instrumented struct {
	inner Store
	c     *Counters
}

func (s *instrumented) Get(ctx context.Context, key string) ([]byte, error) {
	t0 := time.Now()
	payload, err := s.inner.Get(ctx, key)
	switch {
	case err == nil:
		elapsed := time.Since(t0)
		s.c.Hits.Add(1)
		s.c.FetchNanos.Add(int64(elapsed))
		if s.c.fetchSeconds != nil {
			s.c.fetchSeconds.ObserveDuration(elapsed)
		}
	case errors.Is(err, ErrNotFound):
		s.c.Misses.Add(1)
	default:
		var verr *VerifyError
		if errors.As(err, &verr) {
			s.c.VerifyFails.Add(1)
		} else {
			s.c.GetErrs.Add(1)
		}
	}
	return payload, err
}

func (s *instrumented) Put(ctx context.Context, key string, payload []byte) error {
	err := s.inner.Put(ctx, key, payload)
	if err != nil {
		s.c.PutErrs.Add(1)
		return err
	}
	s.c.Puts.Add(1)
	s.c.PutBytes.Add(int64(len(payload)))
	return nil
}

func (s *instrumented) Stat(ctx context.Context, key string) (Info, error) {
	return s.inner.Stat(ctx, key)
}

func (s *instrumented) List(ctx context.Context) ([]Info, error) {
	return s.inner.List(ctx)
}

func (s *instrumented) Delete(ctx context.Context, key string) error {
	return s.inner.Delete(ctx, key)
}

// Unwrap exposes the decorated store (the artifact API reaches through
// to backend-specific methods like FS.QuarantineFiles in tests).
func (s *instrumented) Unwrap() Store { return s.inner }
