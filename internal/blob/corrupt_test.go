package blob

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cogg/internal/faultinject"
)

// The corruption suite pins the tier's central safety property: a blob
// whose payload no longer hashes to its recorded content digest is
// never served, never silently deleted, and always counted.

// TestFSBitFlipQuarantined: one flipped payload bit on disk fails
// re-verification; the entry is set aside under its quarantine name
// with its bytes intact (evidence, not garbage).
func TestFSBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	payload := []byte("bytes that will rot on disk")
	key := DigestParts("bitflip")
	if err := fs.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, key+blobExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x01 // flip one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var verr *VerifyError
	if _, err := fs.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("Get over rotten entry = %v, want VerifyError", err)
	}
	if verr.Backend != "fs" || verr.Want != Sum(payload) {
		t.Errorf("VerifyError = %+v", verr)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still lives at its serving name")
	}
	q := fs.QuarantineFiles()
	if len(q) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", q)
	}
	kept, err := os.ReadFile(q[0])
	if err != nil || !bytes.Equal(kept, raw) {
		t.Error("quarantined bytes were not preserved verbatim")
	}
	if fs.VerifyFailures() != 1 || fs.Quarantined() != 1 {
		t.Errorf("verifyFails=%d quarantined=%d, want 1/1", fs.VerifyFailures(), fs.Quarantined())
	}
	// The next read is a clean miss — the caller falls through to a
	// lower tier or rebuilds from source.
	if _, err := fs.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after quarantine = %v, want ErrNotFound", err)
	}
}

// TestFSGarbageEnvelopeQuarantined: bytes that are not even an envelope
// (an old-format entry, a partial write that dodged the rename
// protocol) get the same treatment as a digest mismatch.
func TestFSGarbageEnvelopeQuarantined(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	key := DigestParts("garbage")
	if err := os.WriteFile(filepath.Join(dir, key+blobExt), []byte("not a table module"), 0o644); err != nil {
		t.Fatal(err)
	}
	var verr *VerifyError
	if _, err := fs.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("Get over garbage = %v, want VerifyError", err)
	}
	if len(fs.QuarantineFiles()) != 1 {
		t.Error("garbage entry was not quarantined")
	}
}

// TestFSTruncationCaught: every truncation point of a valid entry fails
// the envelope size check or the digest, never serves.
func TestFSTruncationCaught(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	payload := bytes.Repeat([]byte("truncate me "), 20)
	key := DigestParts("truncate")
	if err := fs.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+blobExt)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 16, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var verr *VerifyError
		if _, err := fs.Get(ctx, key); !errors.As(err, &verr) {
			t.Errorf("cut=%d: Get = %v, want VerifyError", cut, err)
		}
		// Un-quarantine for the next round.
		for _, q := range fs.QuarantineFiles() {
			os.Remove(q)
		}
	}
}

// TestMemCorruptionEvicted: the memory tier's quarantine is eviction —
// a poisoned entry is never served twice.
func TestMemCorruptionEvicted(t *testing.T) {
	m := NewMem(0, 0)
	key := DigestParts("mem-rot")
	if err := m.Put(ctx, key, []byte("resident payload")); err != nil {
		t.Fatal(err)
	}
	if !m.corruptForTest(key) {
		t.Fatal("corruptForTest missed")
	}
	var verr *VerifyError
	if _, err := m.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("Get over corrupt entry = %v, want VerifyError", err)
	}
	if verr.Backend != "mem" {
		t.Errorf("backend = %q", verr.Backend)
	}
	if _, err := m.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt entry served twice: %v", err)
	}
	if m.VerifyFailures() != 1 {
		t.Errorf("VerifyFailures = %d, want 1", m.VerifyFailures())
	}
}

// TestVerifyFailpoint: the blob/verify failpoint forces a verification
// failure on an intact entry — the chaos hook for drills that need
// corruption without staging real bit rot.
func TestVerifyFailpoint(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/verify", Kind: faultinject.KindError, Class: "io"})

	fs := NewFS(t.TempDir())
	key := DigestParts("drill")
	if err := fs.Put(ctx, key, []byte("intact bytes")); err != nil {
		t.Fatal(err)
	}
	var verr *VerifyError
	if _, err := fs.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("armed blob/verify: Get = %v, want VerifyError", err)
	}
	if len(fs.QuarantineFiles()) != 1 {
		t.Error("failpoint-failed entry was not quarantined")
	}
}

// TestGetFailpointIsNotVerifyFailure: an injected read fault (blob/get)
// is infrastructure, not corruption — no quarantine, no verify count.
func TestGetFailpointIsNotVerifyFailure(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/get", Kind: faultinject.KindError, Class: "io"})

	dir := t.TempDir()
	fs := NewFS(dir)
	key := DigestParts("io-fault")
	if err := fs.Put(ctx, key, []byte("healthy")); err != nil {
		t.Fatal(err)
	}
	_, err := fs.Get(ctx, key)
	var verr *VerifyError
	if err == nil || errors.As(err, &verr) {
		t.Fatalf("Get = %v, want a plain injected I/O error", err)
	}
	if fs.VerifyFailures() != 0 || len(fs.QuarantineFiles()) != 0 {
		t.Error("an I/O fault was booked as corruption")
	}
}
