package blob

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// IndexFile is the sidecar's name inside an FS store's directory.
const IndexFile = "index.json"

// IndexEntry maps one human-meaningful artifact name to its blob: the
// manifest row that makes a digest-keyed store enumerable. Modules key
// by spec name + format version; decks by their request derivation.
type IndexEntry struct {
	Name    string    `json:"name"`    // e.g. "amdahl470.cogg"
	Version string    `json:"version"` // module format version (or deck scheme tag)
	Kind    string    `json:"kind"`    // "module" or "deck"
	Key     string    `json:"key"`     // the blob's digest key
	Content string    `json:"content"` // payload content digest
	Size    int64     `json:"size"`    // payload bytes
	Updated time.Time `json:"updated"` // last upsert
}

// id is the manifest row key: one row per (name, version, kind).
func (e IndexEntry) id() string { return e.Name + "@" + e.Version + "#" + e.Kind }

// Index is the decoded sidecar: artifact name+version -> blob digest.
// The blobs themselves are the truth (List scans them); the index is
// the view that lets `cogg cache ls|gc|verify` answer "what is this
// digest, and is anything still referring to it" without re-deriving
// keys from sources it does not have.
type Index struct {
	Entries map[string]IndexEntry `json:"entries"`
}

// Lookup finds the entry for an artifact name+version+kind.
func (ix *Index) Lookup(name, version, kind string) (IndexEntry, bool) {
	e, ok := ix.Entries[IndexEntry{Name: name, Version: version, Kind: kind}.id()]
	return e, ok
}

// Referenced reports every blob key the index still points at.
func (ix *Index) Referenced() map[string]bool {
	refs := make(map[string]bool, len(ix.Entries))
	for _, e := range ix.Entries {
		refs[e.Key] = true
	}
	return refs
}

// Sorted returns the entries ordered by name, version, kind — the
// stable order `cogg cache ls` prints.
func (ix *Index) Sorted() []IndexEntry {
	entries := make([]IndexEntry, 0, len(ix.Entries))
	for _, e := range ix.Entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		if entries[i].Version != entries[j].Version {
			return entries[i].Version < entries[j].Version
		}
		return entries[i].Kind < entries[j].Kind
	})
	return entries
}

// ReadIndex loads the sidecar under dir; a missing file is an empty
// index, a corrupt one an error (the blobs are intact either way).
func ReadIndex(dir string) (*Index, error) {
	ix := &Index{Entries: map[string]IndexEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		if os.IsNotExist(err) {
			return ix, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(data, ix); err != nil {
		return nil, fmt.Errorf("blob: %s: %w", IndexFile, err)
	}
	if ix.Entries == nil {
		ix.Entries = map[string]IndexEntry{}
	}
	return ix, nil
}

// indexMu serializes this process's read-merge-write cycles. Across
// processes the write is atomic (temp + rename) and merges over a fresh
// read, so concurrent writers can at worst lose each other's newest
// row until the next upsert re-adds it — the blobs themselves are never
// at risk, and every consumer tolerates a missing row.
var indexMu sync.Mutex

// UpdateIndex upserts one manifest row under dir, atomically rewriting
// the sidecar (temp file + rename; no fsync — the index is a
// recomputable view, so crash-durability is the blobs' requirement,
// not the manifest's).
func UpdateIndex(dir string, e IndexEntry) error {
	if dir == "" {
		return nil
	}
	if e.Updated.IsZero() {
		e.Updated = time.Now().UTC()
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	ix, err := ReadIndex(dir)
	if err != nil {
		// A corrupt sidecar is rebuilt from this row forward rather than
		// wedging every publish.
		ix = &Index{Entries: map[string]IndexEntry{}}
	}
	ix.Entries[e.id()] = e
	return writeIndex(dir, ix)
}

// DropIndexKey removes every manifest row pointing at key — the GC
// bookkeeping for a deleted blob.
func DropIndexKey(dir, key string) error {
	indexMu.Lock()
	defer indexMu.Unlock()
	ix, err := ReadIndex(dir)
	if err != nil {
		return err
	}
	changed := false
	for id, e := range ix.Entries {
		if e.Key == key {
			delete(ix.Entries, id)
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return writeIndex(dir, ix)
}

func writeIndex(dir string, ix *Index) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, IndexFile+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, IndexFile)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// GCResult summarizes one garbage-collection pass.
type GCResult struct {
	Deleted     []string // unreferenced blob keys removed
	KeptYoung   []string // unreferenced but younger than the age floor
	KeptRef     int      // referenced blobs (untouched)
	Quarantined []string // quarantine files present (reported, never deleted)
	BytesFreed  int64
}

// GC deletes unreferenced blobs older than minAge from an FS store: a
// blob no manifest row points at is garbage once it has been orphaned
// long enough that no in-flight publish can still be about to index it.
// Quarantined entries are reported and kept — they are evidence.
func GC(fs *FS, minAge time.Duration) (GCResult, error) {
	var res GCResult
	ix, err := ReadIndex(fs.Dir())
	if err != nil {
		return res, err
	}
	refs := ix.Referenced()
	infos, err := fs.List(nil)
	if err != nil {
		return res, err
	}
	now := time.Now()
	for _, info := range infos {
		if refs[info.Key] {
			res.KeptRef++
			continue
		}
		if !info.ModTime.IsZero() && now.Sub(info.ModTime) < minAge {
			res.KeptYoung = append(res.KeptYoung, info.Key)
			continue
		}
		if err := fs.Delete(nil, info.Key); err != nil {
			return res, err
		}
		res.Deleted = append(res.Deleted, info.Key)
		res.BytesFreed += info.Size
	}
	for _, q := range fs.QuarantineFiles() {
		res.Quarantined = append(res.Quarantined, filepath.Base(q))
	}
	return res, nil
}

// VerifyResult summarizes one offline verification pass.
type VerifyResult struct {
	Checked    int
	Bad        []string // keys that failed re-verification (now quarantined)
	IndexDrift []string // manifest rows whose blob is missing or mismatched
}

// Verify re-reads and re-hashes every blob in an FS store (each read
// runs the same digest re-verification the serving path does, so a bad
// entry is quarantined as a side effect), then cross-checks the
// manifest: a row pointing at a missing blob or recording a different
// content digest is drift worth surfacing.
func Verify(fs *FS) (VerifyResult, error) {
	var res VerifyResult
	infos, err := fs.List(nil)
	if err != nil {
		return res, err
	}
	for _, info := range infos {
		res.Checked++
		if _, err := fs.Get(nil, info.Key); err != nil {
			var verr *VerifyError
			if errors.As(err, &verr) || errors.Is(err, ErrNotFound) {
				res.Bad = append(res.Bad, info.Key)
				continue
			}
			return res, err
		}
	}
	ix, err := ReadIndex(fs.Dir())
	if err != nil {
		res.IndexDrift = append(res.IndexDrift, "unreadable: "+err.Error())
		return res, nil
	}
	for _, e := range ix.Sorted() {
		info, err := fs.Stat(nil, e.Key)
		switch {
		case errors.Is(err, ErrNotFound):
			res.IndexDrift = append(res.IndexDrift, fmt.Sprintf("%s@%s: blob %s missing", e.Name, e.Version, short(e.Key)))
		case err != nil:
			res.IndexDrift = append(res.IndexDrift, fmt.Sprintf("%s@%s: %v", e.Name, e.Version, err))
		case e.Content != "" && !strings.EqualFold(info.Content, e.Content):
			res.IndexDrift = append(res.IndexDrift, fmt.Sprintf("%s@%s: content digest drifted", e.Name, e.Version))
		}
	}
	return res, nil
}
