package blob

import (
	"context"
	"errors"
)

// Tiered layers stores fastest-first into one read-through /
// write-through namespace. Get walks the tiers in order and promotes a
// lower-tier hit into every tier above it (best-effort — a failed
// promotion costs nothing but the next miss); Put writes through every
// tier, succeeding if any tier kept the bytes. A tier that errors —
// open breaker, dead disk, corrupt entry (already quarantined by the
// backend) — is skipped, so one sick tier degrades the store to its
// healthy tiers instead of failing the read.
type Tiered struct {
	tiers []Store
}

// NewTiered builds a tiered store; nil tiers are dropped. A Tiered of
// one store is that store plus nothing.
func NewTiered(tiers ...Store) *Tiered {
	t := &Tiered{}
	for _, s := range tiers {
		if s != nil {
			t.tiers = append(t.tiers, s)
		}
	}
	return t
}

// Tiers exposes the layered stores, fastest first.
func (t *Tiered) Tiers() []Store { return t.tiers }

func (t *Tiered) Get(ctx context.Context, key string) ([]byte, error) {
	var firstErr error
	for i, s := range t.tiers {
		payload, err := s.Get(ctx, key)
		if err == nil {
			// Promote upward so the next Get stops sooner. Promotion
			// re-verifies nothing: the payload just passed this tier's
			// read verification.
			for j := 0; j < i; j++ {
				_ = t.tiers[j].Put(ctx, key, payload)
			}
			return payload, nil
		}
		if !errors.Is(err, ErrNotFound) && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNotFound
}

func (t *Tiered) Put(ctx context.Context, key string, payload []byte) error {
	var firstErr error
	stored := false
	for _, s := range t.tiers {
		if err := s.Put(ctx, key, payload); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			stored = true
		}
	}
	if !stored {
		if firstErr != nil {
			return firstErr
		}
		return errors.New("blob: tiered store has no tiers")
	}
	return nil
}

func (t *Tiered) Stat(ctx context.Context, key string) (Info, error) {
	var firstErr error
	for _, s := range t.tiers {
		info, err := s.Stat(ctx, key)
		if err == nil {
			return info, nil
		}
		if !errors.Is(err, ErrNotFound) && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return Info{}, firstErr
	}
	return Info{}, ErrNotFound
}

// List merges the tiers' listings, first tier wins on duplicates.
func (t *Tiered) List(ctx context.Context) ([]Info, error) {
	seen := map[string]bool{}
	var all []Info
	var firstErr error
	for _, s := range t.tiers {
		infos, err := s.List(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, info := range infos {
			if !seen[info.Key] {
				seen[info.Key] = true
				all = append(all, info)
			}
		}
	}
	if all == nil && firstErr != nil {
		return nil, firstErr
	}
	return all, nil
}

func (t *Tiered) Delete(ctx context.Context, key string) error {
	var firstErr error
	for _, s := range t.tiers {
		if err := s.Delete(ctx, key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
