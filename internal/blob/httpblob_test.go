package blob

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testPeer is one in-process replica: a memory store behind the real
// artifact handler, with a request counter.
type testPeer struct {
	store *Mem
	srv   *httptest.Server
	gets  atomic.Int64
	puts  atomic.Int64
	heads atomic.Int64
}

func newTestPeer(t *testing.T) *testPeer {
	t.Helper()
	p := &testPeer{store: NewMem(0, 0)}
	inner := ArtifactHandler(p.store, 0)
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			p.gets.Add(1)
		case http.MethodPut:
			p.puts.Add(1)
		case http.MethodHead:
			p.heads.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

func fastRemote(peers ...string) *Remote {
	return NewRemote(RemoteOptions{
		Peers:          peers,
		AttemptTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
	})
}

func TestRemoteRoundtrip(t *testing.T) {
	peer := newTestPeer(t)
	var logMu sync.Mutex
	var lines []string
	r := NewRemote(RemoteOptions{
		Peers: []string{peer.srv.URL},
		Logf: func(format string, args ...any) {
			logMu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	payload := []byte("a table module crossing the wire")
	key := DigestParts("remote-roundtrip")
	if err := r.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	info, err := r.Stat(ctx, key)
	if err != nil || info.Content != Sum(payload) || info.Size != int64(len(payload)) {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "warm fetch") && strings.Contains(l, short(key)) {
			found = true
		}
	}
	if !found {
		t.Errorf("no warm-fetch log line in %q", lines)
	}
}

func TestRemoteMissIsHealthy(t *testing.T) {
	peer := newTestPeer(t)
	r := fastRemote(peer.srv.URL)
	if _, err := r.Get(ctx, DigestParts("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent = %v, want ErrNotFound", err)
	}
	if states := r.BreakerStates(); states[peer.srv.URL] != "closed" {
		t.Errorf("a coherent miss moved the breaker: %v", states)
	}
}

// TestConditionalGet: If-None-Match with the current digest ETag
// answers 304 with no body — the neighbor-refresh fast path.
func TestConditionalGet(t *testing.T) {
	peer := newTestPeer(t)
	payload := []byte("already have these bytes")
	key := DigestParts("conditional")
	if err := peer.store.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, peer.srv.URL+ArtifactPathPrefix+key, nil)
	req.Header.Set("If-None-Match", ETagFor(Sum(payload)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != ETagFor(Sum(payload)) {
		t.Errorf("304 ETag = %q", got)
	}

	// A stale ETag serves the payload.
	req.Header.Set("If-None-Match", ETagFor(Sum([]byte("older version"))))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET status = %d, want 200", resp2.StatusCode)
	}
}

// TestPutDedupe: publishing content a peer already holds costs a HEAD,
// not a body upload.
func TestPutDedupe(t *testing.T) {
	peer := newTestPeer(t)
	r := fastRemote(peer.srv.URL)
	payload := []byte("published twice, shipped once")
	key := DigestParts("dedupe")
	if err := r.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	if got := peer.puts.Load(); got != 1 {
		t.Errorf("PUT count = %d, want 1 (second publish should dedupe via HEAD)", got)
	}
	if peer.heads.Load() < 1 {
		t.Error("no HEAD issued for dedupe")
	}
}

// TestPutRejectsWireCorruption: a body that does not hash to its digest
// header is refused by the server, never stored.
func TestPutRejectsWireCorruption(t *testing.T) {
	peer := newTestPeer(t)
	key := DigestParts("wire-rot")
	req, _ := http.NewRequest(http.MethodPut, peer.srv.URL+ArtifactPathPrefix+key,
		bytes.NewReader([]byte("corrupted in transit")))
	req.Header.Set(ContentDigestHeader, Sum([]byte("what was actually sent")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT status = %d, want 400", resp.StatusCode)
	}
	if _, err := peer.store.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Error("corrupt body was stored")
	}
}

// TestRemoteSingleflight: concurrent Gets for one key collapse into one
// HTTP fetch — a cold replica's thundering herd costs one round trip.
func TestRemoteSingleflight(t *testing.T) {
	payload := []byte("fetched once")
	key := DigestParts("singleflight")
	var gets atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		<-release
		w.Header().Set("ETag", ETagFor(Sum(payload)))
		w.Write(payload)
	}))
	defer srv.Close()

	r := fastRemote(srv.URL)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := r.Get(ctx, key)
			if err == nil && !bytes.Equal(got, payload) {
				err = errors.New("wrong payload")
			}
			errs[i] = err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the callers pile up
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if got := gets.Load(); got != 1 {
		t.Errorf("server saw %d GETs for one key, want 1", got)
	}
}

// TestHTTPBitFlipRefused is the over-the-wire corruption drill: a peer
// serving bytes that no longer match their digest ETag is refused — a
// VerifyError, not a payload, and no retry (the peer would serve the
// same rot again).
func TestHTTPBitFlipRefused(t *testing.T) {
	payload := []byte("pristine on publish, rotten on serve")
	key := DigestParts("http-rot")
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		rot := bytes.Clone(payload)
		rot[4] ^= 0x20
		w.Header().Set("ETag", ETagFor(Sum(payload))) // stale digest: the pristine one
		w.Write(rot)
	}))
	defer srv.Close()

	r := fastRemote(srv.URL)
	var verr *VerifyError
	if _, err := r.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("Get over rotten wire = %v, want VerifyError", err)
	}
	if verr.Backend != "http" {
		t.Errorf("backend = %q", verr.Backend)
	}
	if gets.Load() != 1 {
		t.Errorf("verify failure was retried (%d GETs)", gets.Load())
	}
}

// TestNoDigestETagRefused: a peer that serves artifacts without a
// digest ETag offers nothing to verify against; the bytes are refused.
func TestNoDigestETagRefused(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("unverifiable"))
	}))
	defer srv.Close()
	r := fastRemote(srv.URL)
	if _, err := r.Get(ctx, DigestParts("unverifiable")); err == nil ||
		!strings.Contains(err.Error(), "no digest ETag") {
		t.Fatalf("Get without ETag = %v, want refusal", err)
	}
}

// TestRetryThenSuccess: one 503 is absorbed by the retry schedule.
func TestRetryThenSuccess(t *testing.T) {
	payload := []byte("second try lucky")
	key := DigestParts("retry")
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("ETag", ETagFor(Sum(payload)))
		w.Write(payload)
	}))
	defer srv.Close()

	r := fastRemote(srv.URL)
	got, err := r.Get(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
}

// TestDeadPeerFallsThrough: a blackholed first peer must not stop the
// walk — the second peer serves, and after enough failures the first
// peer's breaker opens so later reads skip it without a dial.
func TestDeadPeerFallsThrough(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	live := newTestPeer(t)

	payload := []byte("served by the healthy peer")
	key := DigestParts("failover")
	if err := live.store.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}

	r := NewRemote(RemoteOptions{
		Peers:            []string{dead.URL, live.srv.URL},
		AttemptTimeout:   time.Second,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	for i := 0; i < 3; i++ {
		got, err := r.Get(ctx, key)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("round %d: Get = %q, %v", i, got, err)
		}
	}
	states := r.BreakerStates()
	if states[dead.URL] != "open" {
		t.Errorf("dead peer breaker = %q, want open (states %v)", states[dead.URL], states)
	}
	if states[live.srv.URL] != "closed" {
		t.Errorf("live peer breaker = %q, want closed", states[live.srv.URL])
	}
}

// TestHandlerRejectsBadKeys: the artifact API validates keys before
// touching a backend — path traversal shaped strings never reach disk.
func TestHandlerRejectsBadKeys(t *testing.T) {
	peer := newTestPeer(t)
	for _, bad := range []string{"short", "../../etc/passwd", strings.Repeat("g", 64)} {
		resp, err := http.Get(peer.srv.URL + ArtifactPathPrefix + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHandlerServesQuarantineAsMiss: a corrupt local entry answers 404
// with the X-Blob-Verify marker, so a fetching peer books a miss, not
// an error, and the corpse stays quarantined server-side.
func TestHandlerServesQuarantineAsMiss(t *testing.T) {
	mem := NewMem(0, 0)
	srv := httptest.NewServer(ArtifactHandler(mem, 0))
	defer srv.Close()

	key := DigestParts("quarantine-over-http")
	if err := mem.Put(ctx, key, []byte("will rot")); err != nil {
		t.Fatal(err)
	}
	mem.corruptForTest(key)

	resp, err := http.Get(srv.URL + ArtifactPathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("X-Blob-Verify") != "failed" {
		t.Error("verify-failure marker header missing")
	}

	// And through the client: a remote verify-404 is a plain miss.
	r := fastRemote(srv.URL)
	if _, err := r.Get(ctx, DigestParts("absent-entirely")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remote miss = %v, want ErrNotFound", err)
	}
}
