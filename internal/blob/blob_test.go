package blob

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var ctx = context.Background()

// TestDigestPartsBoundaries: the length-prefixed hash must keep field
// boundaries apart — the property the PR 1 cache key was built on, now
// owned by this package.
func TestDigestPartsBoundaries(t *testing.T) {
	if DigestParts("ab", "c") == DigestParts("a", "bc") {
		t.Error("boundary shift produced a digest collision")
	}
	if DigestParts("x") != DigestParts("x") {
		t.Error("digest is not deterministic")
	}
	if !ValidKey(DigestParts("anything", "at", "all")) {
		t.Error("DigestParts does not produce a valid blob key")
	}
	if DigestModule("v1", "n", []byte("s")) != DigestParts("v1", "n", "s") {
		t.Error("DigestModule is not a DigestParts delegate")
	}
}

func TestValidKey(t *testing.T) {
	good := Sum([]byte("payload"))
	for _, tc := range []struct {
		key  string
		want bool
	}{
		{good, true},
		{good[:63], false},
		{good + "0", false},
		{strings.ToUpper(good), false},
		{strings.Replace(good, good[:1], "g", 1), false},
		{"", false},
		{"../" + good[3:], false},
	} {
		if got := ValidKey(tc.key); got != tc.want {
			t.Errorf("ValidKey(%.16q...) = %v, want %v", tc.key, got, tc.want)
		}
	}
}

// roundtrip exercises the full Store contract against one backend.
func roundtrip(t *testing.T, s Store) {
	t.Helper()
	payload := []byte("the artifact bytes")
	key := DigestParts("roundtrip", "key")

	if _, err := s.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	if _, err := s.Stat(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat before Put: %v, want ErrNotFound", err)
	}
	if err := s.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	info, err := s.Stat(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if info.Key != key || info.Content != Sum(payload) || info.Size != int64(len(payload)) {
		t.Fatalf("Stat = %+v", info)
	}
	infos, err := s.List(ctx)
	if err != nil || len(infos) != 1 || infos[0].Key != key {
		t.Fatalf("List = %+v, %v", infos, err)
	}
	if err := s.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, key); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
	}
}

func TestMemRoundtrip(t *testing.T) { roundtrip(t, NewMem(0, 0)) }

func TestFSRoundtrip(t *testing.T) { roundtrip(t, NewFS(t.TempDir())) }

func TestTieredRoundtrip(t *testing.T) {
	roundtrip(t, NewTiered(NewMem(0, 0), NewFS(t.TempDir())))
}

func TestMemEntryBound(t *testing.T) {
	m := NewMem(2, 0)
	keys := []string{DigestParts("a"), DigestParts("b"), DigestParts("c")}
	for _, k := range keys {
		if err := m.Put(ctx, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(ctx, keys[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest entry survived a full LRU: %v", err)
	}
	for _, k := range keys[1:] {
		if _, err := m.Get(ctx, k); err != nil {
			t.Errorf("recent entry %s evicted: %v", short(k), err)
		}
	}
}

func TestMemByteBound(t *testing.T) {
	m := NewMem(0, 10)
	big := bytes.Repeat([]byte("x"), 8)
	k1, k2 := DigestParts("one"), DigestParts("two")
	if err := m.Put(ctx, k1, big); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, k2, big); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, k1); !errors.Is(err, ErrNotFound) {
		t.Errorf("byte bound did not evict the older entry: %v", err)
	}
	// The newest entry always survives, even alone over the byte budget.
	if _, err := m.Get(ctx, k2); err != nil {
		t.Errorf("newest entry evicted by its own arrival: %v", err)
	}
}

func TestFSEnvelopeOnDisk(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	payload := []byte("envelope check")
	key := DigestParts("envelope")
	if err := fs.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, key+blobExt))
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := fsMagic + " " + Sum(payload) + " "
	if !bytes.HasPrefix(raw, []byte(wantHeader)) {
		t.Errorf("entry header = %.90q, want prefix %q", raw, wantHeader)
	}
	if !bytes.HasSuffix(raw, payload) {
		t.Error("payload does not trail the envelope header")
	}
	// No temp debris after a clean Put.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(tmp) != 0 {
		t.Errorf("clean Put left temp files: %v", tmp)
	}
}

// TestTieredPromotion: a hit in a lower tier lands in every tier above
// it, so the next read stops at the fastest one.
func TestTieredPromotion(t *testing.T) {
	mem := NewMem(0, 0)
	fs := NewFS(t.TempDir())
	tiered := NewTiered(mem, fs)

	payload := []byte("promoted")
	key := DigestParts("promotion")
	if err := fs.Put(ctx, key, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Stat(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatal("memory tier warm before the read")
	}
	got, err := tiered.Get(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("tiered Get = %q, %v", got, err)
	}
	if _, err := mem.Stat(ctx, key); err != nil {
		t.Errorf("hit was not promoted into the memory tier: %v", err)
	}
}

// failStore errors on everything — a dead tier.
type failStore struct{}

func (failStore) Get(context.Context, string) ([]byte, error) { return nil, errors.New("dead tier") }
func (failStore) Put(context.Context, string, []byte) error   { return errors.New("dead tier") }
func (failStore) Stat(context.Context, string) (Info, error)  { return Info{}, errors.New("dead tier") }
func (failStore) List(context.Context) ([]Info, error)        { return nil, errors.New("dead tier") }
func (failStore) Delete(context.Context, string) error        { return errors.New("dead tier") }

// TestTieredDegradesAroundSickTier: one erroring tier must cost
// nothing — reads fall through it, writes succeed if any tier stores.
func TestTieredDegradesAroundSickTier(t *testing.T) {
	mem := NewMem(0, 0)
	tiered := NewTiered(failStore{}, mem)
	payload := []byte("survives")
	key := DigestParts("degrade")

	if err := tiered.Put(ctx, key, payload); err != nil {
		t.Fatalf("write-through with one sick tier failed: %v", err)
	}
	got, err := tiered.Get(ctx, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read around a sick tier = %q, %v", got, err)
	}
	// All tiers sick: the write must fail loudly, not silently drop.
	allDead := NewTiered(failStore{})
	if err := allDead.Put(ctx, key, payload); err == nil {
		t.Error("write into only-sick tiers reported success")
	}
	// A miss everywhere with a sick tier present surfaces the tier's
	// error, not a clean miss — infrastructure trouble is not "absent".
	if _, err := tiered.Get(ctx, DigestParts("absent")); !errors.Is(err, ErrNotFound) {
		// mem answers NotFound and failStore answers error; the error wins.
		if err == nil {
			t.Error("miss through a sick tier reported a hit")
		}
	}
}

// TestCountersClassify: the instrumentation decorator must sort Get
// outcomes into hit / miss / verify-failure / error, never double-count.
func TestCountersClassify(t *testing.T) {
	var c Counters
	mem := NewMem(0, 0)
	s := WithCounters(mem, &c)
	key := DigestParts("counted")

	if _, err := s.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if err := s.Put(ctx, key, []byte("counted payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if !mem.corruptForTest(key) {
		t.Fatal("corruptForTest missed the entry")
	}
	var verr *VerifyError
	if _, err := s.Get(ctx, key); !errors.As(err, &verr) {
		t.Fatalf("corrupted Get = %v, want VerifyError", err)
	}
	if h, m, v, e := c.Hits.Load(), c.Misses.Load(), c.VerifyFails.Load(), c.GetErrs.Load(); h != 1 || m != 1 || v != 1 || e != 0 {
		t.Errorf("hits=%d misses=%d verify=%d errs=%d, want 1/1/1/0", h, m, v, e)
	}
	if c.Puts.Load() != 1 || c.PutBytes.Load() != int64(len("counted payload")) {
		t.Errorf("puts=%d bytes=%d", c.Puts.Load(), c.PutBytes.Load())
	}
	if c.FetchNanos.Load() <= 0 {
		t.Error("successful fetch recorded no wall time")
	}
}
