package blob

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestIndexUpsertLookup(t *testing.T) {
	dir := t.TempDir()
	e := IndexEntry{Name: "amdahl470.cogg", Version: "CoGGtbl1", Kind: "module",
		Key: DigestParts("m1"), Content: Sum([]byte("m1")), Size: 2}
	if err := UpdateIndex(dir, e); err != nil {
		t.Fatal(err)
	}
	// Upsert replaces, not appends.
	e.Size = 4
	if err := UpdateIndex(dir, e); err != nil {
		t.Fatal(err)
	}
	if err := UpdateIndex(dir, IndexEntry{Name: "risc32.cogg", Version: "CoGGtbl1",
		Kind: "module", Key: DigestParts("m2")}); err != nil {
		t.Fatal(err)
	}

	ix, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Entries) != 2 {
		t.Fatalf("index holds %d rows, want 2", len(ix.Entries))
	}
	got, ok := ix.Lookup("amdahl470.cogg", "CoGGtbl1", "module")
	if !ok || got.Size != 4 || got.Key != e.Key {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if got.Updated.IsZero() {
		t.Error("upsert did not stamp Updated")
	}
	sorted := ix.Sorted()
	if sorted[0].Name != "amdahl470.cogg" || sorted[1].Name != "risc32.cogg" {
		t.Errorf("Sorted order: %s, %s", sorted[0].Name, sorted[1].Name)
	}
	if !ix.Referenced()[e.Key] {
		t.Error("Referenced misses an indexed key")
	}
}

func TestIndexCorruptSidecarRebuilds(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, IndexFile), []byte("{torn json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(dir); err == nil {
		t.Fatal("corrupt sidecar read as valid")
	}
	// An upsert over a corrupt sidecar rebuilds rather than wedging.
	if err := UpdateIndex(dir, IndexEntry{Name: "n", Version: "v", Kind: "module",
		Key: DigestParts("rebuild")}); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(dir)
	if err != nil || len(ix.Entries) != 1 {
		t.Fatalf("rebuilt index = %+v, %v", ix, err)
	}
}

func TestDropIndexKey(t *testing.T) {
	dir := t.TempDir()
	key := DigestParts("dropped")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(UpdateIndex(dir, IndexEntry{Name: "a", Version: "v", Kind: "module", Key: key}))
	must(UpdateIndex(dir, IndexEntry{Name: "b", Version: "v", Kind: "module", Key: key}))
	must(UpdateIndex(dir, IndexEntry{Name: "c", Version: "v", Kind: "module", Key: DigestParts("kept")}))
	must(DropIndexKey(dir, key))
	ix, err := ReadIndex(dir)
	must(err)
	if len(ix.Entries) != 1 {
		t.Fatalf("after drop: %d rows, want 1", len(ix.Entries))
	}
	if _, ok := ix.Lookup("c", "v", "module"); !ok {
		t.Error("drop removed an unrelated row")
	}
}

// TestGC: referenced blobs stay, unreferenced old blobs go, young
// blobs get grace, quarantined entries are reported and kept.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	refKey, oldKey, youngKey := DigestParts("ref"), DigestParts("old"), DigestParts("young")
	for _, k := range []string{refKey, oldKey, youngKey} {
		if err := fs.Put(ctx, k, []byte("payload for "+short(k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := UpdateIndex(dir, IndexEntry{Name: "kept.cogg", Version: "v", Kind: "module", Key: refKey}); err != nil {
		t.Fatal(err)
	}
	// Age the referenced and unreferenced-old entries past the floor.
	past := time.Now().Add(-2 * time.Hour)
	for _, k := range []string{refKey, oldKey} {
		if err := os.Chtimes(filepath.Join(dir, k+blobExt), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// A quarantined corpse to report.
	if err := os.WriteFile(filepath.Join(dir, DigestParts("corpse")+quarantineExt), []byte("evidence"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := GC(fs, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deleted) != 1 || res.Deleted[0] != oldKey {
		t.Errorf("Deleted = %v, want [%s]", res.Deleted, short(oldKey))
	}
	if res.KeptRef != 1 {
		t.Errorf("KeptRef = %d, want 1", res.KeptRef)
	}
	if len(res.KeptYoung) != 1 || res.KeptYoung[0] != youngKey {
		t.Errorf("KeptYoung = %v", res.KeptYoung)
	}
	if len(res.Quarantined) != 1 {
		t.Errorf("Quarantined = %v, want the corpse reported", res.Quarantined)
	}
	if res.BytesFreed <= 0 {
		t.Error("BytesFreed not accounted")
	}
	if _, err := fs.Get(ctx, refKey); err != nil {
		t.Errorf("referenced blob deleted: %v", err)
	}
	if _, err := fs.Get(ctx, oldKey); err == nil {
		t.Error("unreferenced old blob survived GC")
	}
	if len(fs.QuarantineFiles()) != 1 {
		t.Error("GC deleted a quarantine file")
	}
}

// TestVerifyFindsRotAndDrift: offline verification re-hashes every
// blob (quarantining rot) and cross-checks the manifest.
func TestVerifyFindsRotAndDrift(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	goodKey, badKey := DigestParts("good"), DigestParts("bad")
	if err := fs.Put(ctx, goodKey, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(ctx, badKey, []byte("will rot")); err != nil {
		t.Fatal(err)
	}
	// Rot one blob on disk.
	path := filepath.Join(dir, badKey+blobExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x02
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A manifest row pointing at a blob that does not exist: drift.
	if err := UpdateIndex(dir, IndexEntry{Name: "ghost.cogg", Version: "v", Kind: "module",
		Key: DigestParts("ghost")}); err != nil {
		t.Fatal(err)
	}

	res, err := Verify(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 2 {
		t.Errorf("Checked = %d, want 2", res.Checked)
	}
	if len(res.Bad) != 1 || res.Bad[0] != badKey {
		t.Errorf("Bad = %v, want [%s]", res.Bad, short(badKey))
	}
	if len(res.IndexDrift) != 1 {
		t.Errorf("IndexDrift = %v, want the ghost row", res.IndexDrift)
	}
	if len(fs.QuarantineFiles()) != 1 {
		t.Error("verification did not quarantine the rotten blob")
	}
}
