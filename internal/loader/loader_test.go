package loader_test

import (
	"bytes"
	"reflect"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/labels"
	"cogg/internal/loader"
	"cogg/internal/rt370"
)

// sample builds a small laid-out program with a branch, a long branch,
// and an address constant.
func sample(t *testing.T) (*asm.Program, *loader.Deck) {
	t.Helper()
	m := rt370.Machine()
	p := asm.NewProgram("SAMPLE")
	p.Origin = rt370.CodeOrigin
	p.PoolOrigin = rt370.PoolOrigin
	p.Append(asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(100, 0, 13)}})
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1, Scratch: 3})
	p.Append(asm.Instr{Pseudo: asm.AddrConst, Label: 1})
	for i := 0; i < 60; i++ {
		p.Append(asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(1), asm.R(1)}})
	}
	_ = p.DefineLabel(1, len(p.Instrs))
	p.Append(asm.Instr{Op: "bcr", Opds: []asm.Operand{asm.I(15), asm.R(14)}})
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	deck, err := loader.Build(p, m)
	if err != nil {
		t.Fatal(err)
	}
	return p, deck
}

func TestBuildDeck(t *testing.T) {
	p, deck := sample(t)
	if deck.Entry != p.Origin {
		t.Errorf("entry %#x", deck.Entry)
	}
	if len(deck.Sections) == 0 || deck.Sections[0].Name != "SAMPLE" {
		t.Errorf("sections: %+v", deck.Sections)
	}
	if deck.Sections[0].Length != p.CodeSize {
		t.Errorf("section length %d, want %d", deck.Sections[0].Length, p.CodeSize)
	}
	if deck.TotalTextBytes() < p.CodeSize {
		t.Errorf("text bytes %d < code size %d", deck.TotalTextBytes(), p.CodeSize)
	}
	// The address constant must have an RLD item.
	if len(deck.Relocs) == 0 {
		t.Error("no relocation items for the address constant")
	}
}

func TestLoadInto(t *testing.T) {
	p, deck := sample(t)
	mem := make([]byte, rt370.MemSize)
	if err := deck.LoadInto(mem, 0); err != nil {
		t.Fatal(err)
	}
	// First instruction bytes at the origin.
	if mem[p.Origin] != 0x58 {
		t.Errorf("origin byte %#x", mem[p.Origin])
	}
	// The address constant holds the label address.
	acAddr := p.Instrs[2].Addr
	got := int(mem[acAddr])<<24 | int(mem[acAddr+1])<<16 | int(mem[acAddr+2])<<8 | int(mem[acAddr+3])
	want, _ := p.LabelAddr(1)
	if got != want {
		t.Errorf("address constant %#x, want %#x", got, want)
	}
}

func TestLoadIntoRelocates(t *testing.T) {
	p, deck := sample(t)
	mem := make([]byte, rt370.MemSize)
	const factor = 0x2000
	if err := deck.LoadInto(mem, factor); err != nil {
		t.Fatal(err)
	}
	acAddr := p.Instrs[2].Addr + factor
	got := int(mem[acAddr])<<24 | int(mem[acAddr+1])<<16 | int(mem[acAddr+2])<<8 | int(mem[acAddr+3])
	want, _ := p.LabelAddr(1)
	if got != want+factor {
		t.Errorf("relocated constant %#x, want %#x", got, want+factor)
	}
}

func TestCardsRoundTrip(t *testing.T) {
	_, deck := sample(t)
	var buf bytes.Buffer
	if err := deck.WriteCards(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%loader.CardSize != 0 {
		t.Fatalf("deck length %d is not card aligned", buf.Len())
	}
	back, err := loader.ReadCards(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != deck.Entry || back.Name != deck.Name {
		t.Errorf("header: %+v", back)
	}
	if !reflect.DeepEqual(back.Texts, deck.Texts) {
		t.Error("text records changed across the card deck")
	}
	if len(back.Relocs) != len(deck.Relocs) {
		t.Errorf("relocs %d vs %d", len(back.Relocs), len(deck.Relocs))
	}
	// Loading the reread deck gives identical storage.
	m1 := make([]byte, rt370.MemSize)
	m2 := make([]byte, rt370.MemSize)
	if err := deck.LoadInto(m1, 0); err != nil {
		t.Fatal(err)
	}
	if err := back.LoadInto(m2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1, m2) {
		t.Error("reread deck loads differently")
	}
}

func TestReadCardsErrors(t *testing.T) {
	if _, err := loader.ReadCards(bytes.NewReader(nil)); err == nil {
		t.Error("empty deck accepted")
	}
	card := make([]byte, loader.CardSize)
	if _, err := loader.ReadCards(bytes.NewReader(card)); err == nil {
		t.Error("record without X'02' accepted")
	}
	card[0] = 0x02
	copy(card[1:4], "XXX")
	if _, err := loader.ReadCards(bytes.NewReader(card)); err == nil {
		t.Error("unknown record type accepted")
	}
	// TXT-only deck with no END.
	card[0] = 0x02
	copy(card[1:4], "TXT")
	if _, err := loader.ReadCards(bytes.NewReader(card)); err == nil {
		t.Error("deck without END accepted")
	}
}

func TestLoadIntoBounds(t *testing.T) {
	_, deck := sample(t)
	small := make([]byte, 16)
	if err := deck.LoadInto(small, 0); err == nil {
		t.Error("load into tiny storage succeeded")
	}
}

func TestBuildRejectsUnlaidProgram(t *testing.T) {
	p := asm.NewProgram("BAD")
	p.Origin = rt370.CodeOrigin
	p.Append(asm.Instr{Op: "lr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
	// No labels.Layout: Addr fields are zero, mismatching the origin.
	if _, err := loader.Build(p, rt370.Machine()); err == nil {
		t.Error("Build accepted a program that was never laid out")
	}
}
