// Package loader implements the Loader Record Generator (paper section
// 3): after the label dictionary has been resolved it encodes the final
// instructions and constructs the TEXT records which make up the object
// module, in the 80-column card-image format of the OS/360 loader
// (ESD/TXT/RLD/END). Record names and section names are carried in ASCII
// rather than EBCDIC; the record structure is otherwise faithful.
package loader

import (
	"bytes"
	"fmt"
	"io"

	"cogg/internal/asm"
	"cogg/internal/labels"
)

// CardSize is the length of one loader record.
const CardSize = 80

// TxtDataMax is the payload capacity of one TXT record (columns 17-72).
const TxtDataMax = 56

// Section is one ESD (external symbol dictionary) item: a control section
// with its load address and length.
type Section struct {
	Name   string
	Addr   int
	Length int
}

// Text is one span of object text destined for storage.
type Text struct {
	Addr int
	Data []byte
}

// Reloc marks a 4-byte address constant that the loader must relocate.
type Reloc struct {
	Addr int
}

// Deck is one object module.
type Deck struct {
	Name     string
	Entry    int
	Sections []Section
	Texts    []Text
	Relocs   []Reloc
}

// Build encodes a laid-out program into an object deck: code text,
// literal pool text, and relocation items for every address constant.
func Build(p *asm.Program, m asm.Machine) (*Deck, error) {
	d := &Deck{Name: p.Name, Entry: p.Origin}

	var code bytes.Buffer
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if p.Origin+code.Len() != in.Addr {
			return nil, fmt.Errorf("loader: instruction %d laid out at %#x but text cursor is %#x (run labels.Layout first)",
				i, in.Addr, p.Origin+code.Len())
		}
		b, err := m.Encode(p, in)
		if err != nil {
			return nil, fmt.Errorf("loader: instruction %d: %w", i, err)
		}
		if len(b) != in.Size {
			return nil, fmt.Errorf("loader: instruction %d (%s) encoded to %d bytes, laid out as %d",
				i, in.Op, len(b), in.Size)
		}
		code.Write(b)
		if in.Pseudo == asm.AddrConst {
			d.Relocs = append(d.Relocs, Reloc{Addr: in.Addr})
		}
	}
	d.Sections = append(d.Sections, Section{Name: p.Name, Addr: p.Origin, Length: code.Len()})
	d.Texts = appendTexts(d.Texts, p.Origin, code.Bytes())

	if len(p.Pool) > 0 {
		pool, err := labels.PoolBytes(p)
		if err != nil {
			return nil, err
		}
		d.Sections = append(d.Sections, Section{Name: "@POOL", Addr: p.PoolOrigin, Length: len(pool)})
		d.Texts = appendTexts(d.Texts, p.PoolOrigin, pool)
		for i, e := range p.Pool {
			if e.IsLabel {
				d.Relocs = append(d.Relocs, Reloc{Addr: p.PoolAddr(i)})
			}
		}
	}
	return d, nil
}

func appendTexts(texts []Text, addr int, data []byte) []Text {
	for len(data) > 0 {
		n := len(data)
		if n > TxtDataMax {
			n = TxtDataMax
		}
		texts = append(texts, Text{Addr: addr, Data: append([]byte(nil), data[:n]...)})
		addr += n
		data = data[n:]
	}
	return texts
}

// LoadInto copies every text record into storage, applying the relocation
// factor to each address constant.
func (d *Deck) LoadInto(mem []byte, factor int) error {
	for _, t := range d.Texts {
		addr := t.Addr + factor
		if addr < 0 || addr+len(t.Data) > len(mem) {
			return fmt.Errorf("loader: TXT record at %#x does not fit in storage", addr)
		}
		copy(mem[addr:], t.Data)
	}
	for _, r := range d.Relocs {
		addr := r.Addr + factor
		if addr < 0 || addr+4 > len(mem) {
			return fmt.Errorf("loader: RLD item at %#x outside storage", addr)
		}
		v := int(uint32(mem[addr])<<24|uint32(mem[addr+1])<<16|uint32(mem[addr+2])<<8|uint32(mem[addr+3])) + factor
		mem[addr], mem[addr+1], mem[addr+2], mem[addr+3] =
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
	return nil
}

// TotalTextBytes returns the number of object text bytes in the deck.
func (d *Deck) TotalTextBytes() int {
	n := 0
	for _, t := range d.Texts {
		n += len(t.Data)
	}
	return n
}

// --- card-image encoding ------------------------------------------------

// WriteCards emits the deck as 80-byte loader records.
func (d *Deck) WriteCards(w io.Writer) error {
	write := func(card []byte) error {
		if len(card) != CardSize {
			return fmt.Errorf("loader: internal error: %d-byte card (records are %d bytes)", len(card), CardSize)
		}
		_, err := w.Write(card)
		return err
	}
	for i, s := range d.Sections {
		card := blankCard("ESD")
		copy(card[16:24], padName(s.Name))
		card[24] = 0x00 // type SD
		put3(card[25:], s.Addr)
		put3(card[28:], s.Length)
		put2(card[14:], i+1) // ESDID
		if err := write(card); err != nil {
			return err
		}
	}
	for _, t := range d.Texts {
		card := blankCard("TXT")
		put3(card[5:], t.Addr)
		put2(card[10:], len(t.Data))
		put2(card[14:], 1)
		copy(card[16:], t.Data)
		if err := write(card); err != nil {
			return err
		}
	}
	for start := 0; start < len(d.Relocs); start += 7 {
		end := start + 7
		if end > len(d.Relocs) {
			end = len(d.Relocs)
		}
		card := blankCard("RLD")
		put2(card[10:], (end-start)*8)
		for i, r := range d.Relocs[start:end] {
			item := card[16+8*i:]
			put2(item, 1)     // R pointer
			put2(item[2:], 1) // P pointer
			item[4] = 0x0C    // 4-byte address constant, positive
			put3(item[5:], r.Addr)
		}
		if err := write(card); err != nil {
			return err
		}
	}
	card := blankCard("END")
	put3(card[5:], d.Entry)
	copy(card[16:24], padName(d.Name))
	return write(card)
}

// ReadCards parses a deck written by WriteCards.
func ReadCards(r io.Reader) (*Deck, error) {
	d := &Deck{}
	card := make([]byte, CardSize)
	for {
		_, err := io.ReadFull(r, card)
		if err == io.EOF {
			return nil, fmt.Errorf("loader: deck has no END record")
		}
		if err != nil {
			return nil, fmt.Errorf("loader: reading record: %w", err)
		}
		if card[0] != 0x02 {
			return nil, fmt.Errorf("loader: record does not begin with X'02'")
		}
		switch string(card[1:4]) {
		case "ESD":
			d.Sections = append(d.Sections, Section{
				Name:   trimName(card[16:24]),
				Addr:   get3(card[25:]),
				Length: get3(card[28:]),
			})
		case "TXT":
			n := get2(card[10:])
			if n < 0 || n > TxtDataMax {
				return nil, fmt.Errorf("loader: TXT record with byte count %d", n)
			}
			d.Texts = append(d.Texts, Text{
				Addr: get3(card[5:]),
				Data: append([]byte(nil), card[16:16+n]...),
			})
		case "RLD":
			n := get2(card[10:])
			if n%8 != 0 || n > 56 {
				return nil, fmt.Errorf("loader: RLD record with data length %d", n)
			}
			for i := 0; i < n/8; i++ {
				item := card[16+8*i:]
				d.Relocs = append(d.Relocs, Reloc{Addr: get3(item[5:])})
			}
		case "END":
			d.Entry = get3(card[5:])
			d.Name = trimName(card[16:24])
			return d, nil
		default:
			return nil, fmt.Errorf("loader: unknown record type %q", card[1:4])
		}
	}
}

func blankCard(kind string) []byte {
	card := make([]byte, CardSize)
	for i := range card {
		card[i] = ' '
	}
	card[0] = 0x02
	copy(card[1:4], kind)
	return card
}

func padName(name string) []byte {
	b := []byte("        ")
	copy(b, name)
	return b
}

func trimName(b []byte) string { return string(bytes.TrimRight(b, " ")) }

func put3(b []byte, v int) { b[0], b[1], b[2] = byte(v>>16), byte(v>>8), byte(v) }
func put2(b []byte, v int) { b[0], b[1] = byte(v>>8), byte(v) }

func get3(b []byte) int { return int(b[0])<<16 | int(b[1])<<8 | int(b[2]) }
func get2(b []byte) int { return int(b[0])<<8 | int(b[1]) }
