package fleet

import (
	"net/http"
	"testing"
	"time"
)

// The breaker state machine is exercised end to end by the cluster
// package's suite (which aliases this implementation); these tests pin
// the fleet-level contract points.

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped before the default threshold of 5")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not trip at the default threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
}

func TestBackoffDelay(t *testing.T) {
	const base, max = 10 * time.Millisecond, 80 * time.Millisecond
	for try := 0; try < 10; try++ {
		d := BackoffDelay(try, base, max, 0)
		if d < 0 || d > max {
			t.Fatalf("try %d: delay %v outside [0, %v]", try, d, max)
		}
	}
	// Retry-After is a floor, not a suggestion.
	if d := BackoffDelay(0, base, max, 300*time.Millisecond); d != 300*time.Millisecond {
		t.Errorf("Retry-After floor ignored: %v", d)
	}
	// Degenerate configuration still terminates with a sane value.
	if d := BackoffDelay(62, base, 0, 0); d < 0 {
		t.Errorf("zero max backoff went negative: %v", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if got := ParseRetryAfter(h); got != 0 {
		t.Errorf("absent header = %v", got)
	}
	h.Set("Retry-After", "3")
	if got := ParseRetryAfter(h); got != 3*time.Second {
		t.Errorf("delay-seconds = %v", got)
	}
	h.Set("Retry-After", "not-a-number")
	if got := ParseRetryAfter(h); got != 0 {
		t.Errorf("malformed header = %v", got)
	}
	h.Set("Retry-After", "-2")
	if got := ParseRetryAfter(h); got != 0 {
		t.Errorf("negative header = %v", got)
	}
}
