package fleet

import (
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// BackoffDelay computes the sleep before retry number try (0-based):
// an exponential ceiling with full jitter, never below the server's
// Retry-After when one was sent. Both fleet clients — compile routing
// and artifact fetching — retry in this rhythm.
func BackoffDelay(try int, base, max, retryAfter time.Duration) time.Duration {
	ceil := base << uint(try)
	if ceil > max || ceil <= 0 {
		ceil = max
	}
	if ceil <= 0 {
		ceil = base
	}
	d := time.Duration(0)
	if ceil > 0 {
		d = time.Duration(rand.Int63n(int64(ceil) + 1))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// ParseRetryAfter reads a Retry-After header in delay-seconds form (the
// form cogd sends). HTTP-date form is rare and a miss just means the
// jittered backoff governs alone.
func ParseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
