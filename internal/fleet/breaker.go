// Package fleet holds the client-side policy primitives shared by every
// layer that talks to a cogd fleet: the per-replica circuit breaker and
// the retry backoff schedule. internal/cluster (compile routing) and
// internal/blob (artifact fetching) both build on these, so a replica
// that trips its breaker for one kind of traffic is judged by the same
// rules for the other — and so the two clients never drift apart in
// retry rhythm.
package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker. It trips open after
// Threshold consecutive failures, rejects everything for Cooldown, then
// half-opens: one request is admitted as a probe, and its outcome
// either closes the breaker or slams it open for another cooldown.
//
// The breaker is deliberately per-replica, not per-(replica, spec): the
// failures it watches — connection refused, request timeouts, 5xx —
// are process-level symptoms, and one sick replica should shed all of
// its traffic at once rather than spec by spec.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool

	// OnTransition is the metrics hook, called (outside the fast path,
	// inside the lock) on every state change. Set it before the breaker
	// sees traffic.
	OnTransition func(to BreakerState)

	// Now is the clock, replaceable in tests. NewBreaker sets time.Now.
	Now func() time.Time
}

// NewBreaker builds a closed Breaker; threshold <= 0 means 5 and
// cooldown <= 0 means one second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, Now: time.Now}
}

func (b *Breaker) transition(to BreakerState) {
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(to)
	}
}

// Allow reports whether a request may be sent. A true return from the
// half-open state consumes the single probe slot, so the caller must
// follow up with Success, Failure, or CancelProbe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.Now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a request that reached the replica and got a sane
// answer.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != BreakerClosed {
		b.probing = false
		b.transition(BreakerClosed)
	}
}

// CancelProbe releases the half-open probe slot without judging the
// replica. A request admitted as the probe can end for reasons that
// say nothing about the replica's health — the hedge winner canceled
// it, or the caller's context ended. Without this release the slot
// would stay consumed forever and the breaker would sit half-open
// rejecting everything, permanently ejecting the replica.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Failure records a transport error, attempt timeout, or 5xx.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.Now()
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.Now()
		b.transition(BreakerOpen)
	case BreakerOpen:
		// Late failures from requests admitted before the trip; the
		// breaker is already open, just keep the cooldown fresh enough.
	}
}

// State reports the breaker's position without consuming a probe slot.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
