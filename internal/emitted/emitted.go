// Package emitted links the checked-in generated engines into a build.
// Each subdirectory is the output of `cogg emit-go` for one built-in
// specification, committed so consumers compile without a generation
// step; the blank imports run each engine's init() self-registration
// (codegen.RegisterEmitted), which is how driver.Target finds them.
//
// Regenerate after changing a specification, the emitter, or the
// shared runtime surface:
//
//	go generate ./internal/emitted
//
// TestEmittedCurrent fails when a checked-in engine drifts from what
// the emitter produces today.
package emitted

//go:generate go run cogg/cmd/cogg emit-go -spec amdahl470 -o amdahl470 -pkg amdahl470

import (
	_ "cogg/internal/emitted/amdahl470"
)
