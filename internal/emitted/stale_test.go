package emitted

import (
	"os"
	"path/filepath"
	"testing"

	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/emitgo"
	"cogg/internal/rt370"
	"cogg/specs"
)

// TestEmittedCurrent regenerates each checked-in engine and compares it
// byte for byte with the committed sources, so a change to the
// specification, the emitter, or the compiled-plan view cannot land
// without refreshing the generated package (`go generate ./internal/emitted`).
func TestEmittedCurrent(t *testing.T) {
	engines := []struct {
		dir, pkg, specName, specSrc string
	}{
		{"amdahl470", "amdahl470", "amdahl470.cogg", specs.Amdahl470},
	}
	for _, e := range engines {
		t.Run(e.dir, func(t *testing.T) {
			cg, err := core.Generate(e.specName, e.specSrc)
			if err != nil {
				t.Fatalf("core.Generate: %v", err)
			}
			files, err := emitgo.Emit(cg.Module(), rt370.Config(), emitgo.Options{
				Package:    e.pkg,
				SpecName:   e.specName,
				SpecSHA256: codegen.SpecSHA256([]byte(e.specSrc)),
			})
			if err != nil {
				t.Fatalf("emitgo.Emit: %v", err)
			}
			onDisk, err := filepath.Glob(filepath.Join(e.dir, "*.go"))
			if err != nil {
				t.Fatal(err)
			}
			if len(onDisk) != len(files) {
				t.Errorf("checked-in package has %d files, emitter produces %d", len(onDisk), len(files))
			}
			for name, want := range files {
				got, err := os.ReadFile(filepath.Join(e.dir, name))
				if err != nil {
					t.Errorf("%s: %v (run `go generate ./internal/emitted`)", name, err)
					continue
				}
				if string(got) != string(want) {
					t.Errorf("%s/%s is stale: checked-in bytes differ from the emitter's output; run `go generate ./internal/emitted`", e.dir, name)
				}
			}
		})
	}
}
