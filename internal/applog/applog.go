// Package applog is the daemons' logging seam behind the -log-format
// flag. Text mode (the default) keeps the traditional log.Printf lines
// byte-compatible with what cogd and cogdfront have always emitted, so
// existing grep-based tooling keeps working; json mode switches every
// line to log/slog structured output — one JSON object per line — and
// hands the embedding server a *slog.Logger so request-scoped reports
// (slow-request trees) carry trace IDs as first-class attributes
// instead of being buried in formatted prose.
package applog

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

// Logger routes daemon operational lines per the chosen format.
type Logger struct {
	json      *slog.Logger
	component string
}

// New builds a logger for -log-format value format ("", "text", or
// "json"); component tags every structured line ("cogd", "cogdfront").
func New(format, component string) (*Logger, error) {
	switch format {
	case "", "text":
		return &Logger{component: component}, nil
	case "json":
		return &Logger{
			json:      slog.New(slog.NewJSONHandler(os.Stderr, nil)).With("component", component),
			component: component,
		}, nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// Printf emits one operational line. Text mode is exactly log.Printf —
// call sites keep their historical "cogd: ..." phrasing; json mode
// wraps the same formatted message in a structured record.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil || l.json == nil {
		log.Printf(format, args...)
		return
	}
	l.json.Info(fmt.Sprintf(format, args...))
}

// Info emits a structured line: msg plus key/value attrs. Text mode
// renders them as logfmt-style suffixes on a log.Printf line.
func (l *Logger) Info(msg string, attrs ...any) {
	if l == nil || l.json == nil {
		log.Printf("%s: %s%s", l.comp(), msg, renderAttrs(attrs))
		return
	}
	l.json.Info(msg, attrs...)
}

// Fatalf logs and exits 1, both modes.
func (l *Logger) Fatalf(format string, args ...any) {
	if l == nil || l.json == nil {
		log.Fatalf(format, args...)
	}
	l.json.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Slog exposes the structured logger, nil in text mode — servers use it
// to decide between structured and legacy slow-request reporting.
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.json
}

func (l *Logger) comp() string {
	if l == nil || l.component == "" {
		return "log"
	}
	return l.component
}

// renderAttrs formats alternating key/value pairs as " k=v" suffixes.
func renderAttrs(attrs []any) string {
	if len(attrs) == 0 {
		return ""
	}
	out := ""
	for i := 0; i+1 < len(attrs); i += 2 {
		out += fmt.Sprintf(" %v=%v", attrs[i], attrs[i+1])
	}
	if len(attrs)%2 == 1 {
		out += fmt.Sprintf(" %v", attrs[len(attrs)-1])
	}
	return out
}
