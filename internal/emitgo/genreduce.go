package emitgo

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"cogg/internal/codegen"
)

// reduceFile renders the compiled reduction sites: one function per
// production performing the same sequence as the interpreted
// run.reduce — begin, bind slots from the popped right side, allocate,
// act on each template, epilogue — with every plan decision (slot
// numbers, classes, operand shapes, literals, static errors) baked in.
func (e *emitter) reduceFile() []byte {
	body := &bytes.Buffer{}
	imp := &importSet{}

	fmt.Fprintf(body, "// tails carries each production's reduction epilogue: the static\n")
	fmt.Fprintf(body, "// release/push data EndReduce consumes (see codegen.ReduceTail).\n")
	fmt.Fprintf(body, "var tails = [...]codegen.ReduceTail{\n")
	for i := range e.view.Prods {
		t := &e.view.Prods[i].Tail
		fmt.Fprintf(body, "\t{ProdNum: %d, Lambda: %v, LHSClass: %q, LHSName: %q, LHSTag: %d, LHSSlot: %d, LHSFallback: %d, RHSClass: %s, SlotClass: %s},\n",
			t.ProdNum, t.Lambda, t.LHSClass, t.LHSName, t.LHSTag, t.LHSSlot, t.LHSFallback,
			strSlice(t.RHSClass), strSlice(t.SlotClass))
	}
	fmt.Fprintf(body, "}\n\n")

	fmt.Fprintf(body, "// reduceFns dispatches a Reduce action's production index to its\n")
	fmt.Fprintf(body, "// compiled reduction site.\n")
	fmt.Fprintf(body, "var reduceFns = [%d]func(*session) error{\n", len(e.view.Prods))
	for i := range e.view.Prods {
		fmt.Fprintf(body, "\t(*session).reduce%d,\n", i)
	}
	fmt.Fprintf(body, "}\n\n")

	for i := range e.view.Prods {
		e.prodFunc(body, imp, &e.view.Prods[i])
	}

	b := e.file(imp.list()...)
	b.Write(body.Bytes())
	return b.Bytes()
}

// importSet accumulates the imports the generated reduction sites need.
type importSet struct {
	fmt, asm, cse, errors bool
}

func (s *importSet) list() []string {
	var out []string
	if s.errors {
		out = append(out, "errors")
	}
	if s.fmt {
		out = append(out, "fmt")
	}
	out = append(out, "") // std / project separator
	if s.asm {
		out = append(out, "cogg/internal/asm")
	}
	out = append(out, "cogg/internal/codegen")
	if s.cse {
		out = append(out, "cogg/internal/cse")
	}
	if out[0] == "" {
		out = out[1:]
	}
	return out
}

func strSlice(xs []string) string {
	if len(xs) == 0 {
		return "nil"
	}
	var sb strings.Builder
	sb.WriteString("[]string{")
	for i, x := range xs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Quote(x))
	}
	sb.WriteString("}")
	return sb.String()
}

// prodGen renders one production's reduction site.
type prodGen struct {
	b    *bytes.Buffer
	imp  *importSet
	pv   *codegen.ProdView
	nv   int  // fresh-variable counter
	done bool // an unconditional return was emitted; the rest is unreachable
}

func (e *emitter) prodFunc(b *bytes.Buffer, imp *importSet, pv *codegen.ProdView) {
	g := &prodGen{b: b, imp: imp, pv: pv}
	fmt.Fprintf(b, "// reduce%d is production %d: %s\n", pv.Index, pv.Num, pv.Text)
	fmt.Fprintf(b, "func (s *session) reduce%d() error {\n", pv.Index)
	fmt.Fprintf(b, "rt := s.rt\n")
	fmt.Fprintf(b, "if err := rt.BeginReduce(%d, %d, %d); err != nil {\nreturn err\n}\n", pv.Num, pv.RHSLen, pv.NSlots)
	for i, slot := range pv.RHSSlot {
		if slot >= 0 {
			fmt.Fprintf(b, "rt.Bind(%d, %d) // %s\n", slot, i, pv.SlotName[slot])
		}
	}
	g.allocs()
	if !g.done {
		fmt.Fprintf(b, "rt.EndAllocPhase()\n")
		for si := range pv.Steps {
			g.step(&pv.Steps[si])
			if g.done {
				break
			}
		}
	}
	if !g.done {
		fmt.Fprintf(b, "rt.EndEmitPhase()\n")
		fmt.Fprintf(b, "if err := rt.CheckTrailingSkips(%d); err != nil {\nreturn err\n}\n", pv.Num)
		fmt.Fprintf(b, "return rt.EndReduce(&tails[%d])\n", pv.Index)
	}
	fmt.Fprintf(b, "}\n\n")
}

// allocs renders the up-front register allocation, in the interpreted
// order: every `using` then every `need`, each class-checked first.
func (g *prodGen) allocs() {
	for _, u := range g.pv.Uses {
		if g.done {
			return
		}
		if u.Class == "" {
			g.imp.errors = true
			fmt.Fprintf(g.b, "return errors.New(%q)\n",
				fmt.Sprintf("codegen: using %s.%d: not a register class", u.SymName, u.Tag))
			g.done = true
			return
		}
		fmt.Fprintf(g.b, "if err := rt.Using(%q, %d, %d); err != nil {\nreturn err\n}\n", u.Class, u.Slot, g.pv.Num)
	}
	for _, n := range g.pv.Needs {
		if g.done {
			return
		}
		if n.Class == "" {
			g.imp.errors = true
			fmt.Fprintf(g.b, "return errors.New(%q)\n",
				fmt.Sprintf("codegen: need %s.%d: not a register class", n.SymName, n.Tag))
			g.done = true
			return
		}
		fmt.Fprintf(g.b, "if err := rt.Need(%q, %d, %d, tails[%d].SlotClass, %d); err != nil {\nreturn err\n}\n",
			n.Class, n.Tag, n.Slot, g.pv.Index, g.pv.Num)
	}
}

// --- per-step helpers ---------------------------------------------------

// prefix is the template-error context tmplErr would prepend.
func (g *prodGen) prefix(st *codegen.StepView) string {
	return fmt.Sprintf("production %d, template %q (line %d): ", g.pv.Num, st.Name, st.Line)
}

// staticErr emits the unconditional GenErr for a statically-known
// template failure, prefixed with the step's context.
func (g *prodGen) staticErr(st *codegen.StepView, msg string) {
	fmt.Fprintf(g.b, "return rt.GenErr(%q)\n", g.prefix(st)+msg)
	g.done = true
}

// wrap emits the runtime-error wrapper around a core call expression.
func (g *prodGen) wrap(st *codegen.StepView, call string) {
	fmt.Fprintf(g.b, "if err := %s; err != nil {\nreturn rt.TemplateErr(%d, %q, %d, err)\n}\n",
		call, g.pv.Num, st.Name, st.Line)
}

func (g *prodGen) fresh() string {
	g.nv++
	return fmt.Sprintf("v%d", g.nv)
}

// fmtEscape embeds literal text into a generated format string.
func fmtEscape(s string) string { return strings.ReplaceAll(s, "%", "%%") }

// val resolves template operand i as a plain number (the generated
// stepVal): returns the int64-valued expression, or emits the static
// error and reports !ok.
func (g *prodGen) val(st *codegen.StepView, i int) (string, bool) {
	if i >= len(st.Vals) {
		g.staticErr(st, fmt.Sprintf("missing operand %d", i+1))
		return "", false
	}
	v := &st.Vals[i]
	if !v.Scalar {
		g.staticErr(st, fmt.Sprintf("operand %d must not have an address form", i+1))
		return "", false
	}
	return g.atomVal(st, &v.Atom)
}

// ref resolves template operand i as a bare tagged reference with a
// value (the generated stepRef).
func (g *prodGen) ref(st *codegen.StepView, i int) (*codegen.RefView, bool) {
	if i >= len(st.Refs) {
		g.staticErr(st, fmt.Sprintf("missing operand %d", i+1))
		return nil, false
	}
	r := &st.Refs[i]
	if !r.Bare {
		g.staticErr(st, fmt.Sprintf("operand %d must be a tagged symbol reference", i+1))
		return nil, false
	}
	if r.Slot < 0 {
		g.staticErr(st, fmt.Sprintf("operand %s.%d has no value in this reduction", r.SymName, r.Tag))
		return nil, false
	}
	return r, true
}

// atomVal resolves one atom to its int64 value expression.
func (g *prodGen) atomVal(st *codegen.StepView, a *codegen.AtomView) (string, bool) {
	switch {
	case a.Slot >= 0:
		return fmt.Sprintf("rt.Slot(%d)", a.Slot), true
	case a.Slot == codegen.LitSlot:
		return strconv.FormatInt(a.Val, 10), true
	}
	g.staticErr(st, fmt.Sprintf("operand %s.%d has no value in this reduction", a.SymName, a.Tag))
	return "", false
}

// regAtom resolves one atom used in a register position, with the
// interpreter's 0..15 range check (compile-time for literals, runtime
// for slot bindings). The returned expression has type int.
func (g *prodGen) regAtom(st *codegen.StepView, a *codegen.AtomView) (string, bool) {
	switch {
	case a.Slot >= 0:
		v := g.fresh()
		g.imp.fmt = true
		fmt.Fprintf(g.b, "%s := rt.Slot(%d)\n", v, a.Slot)
		fmt.Fprintf(g.b, "if %s < 0 || %s > 15 {\nreturn rt.GenErr(fmt.Sprintf(%q, %s))\n}\n",
			v, v, fmtEscape(g.prefix(st))+"register number %d out of range", v)
		return fmt.Sprintf("int(%s)", v), true
	case a.Slot == codegen.LitSlot:
		if a.Val < 0 || a.Val > 15 {
			g.staticErr(st, fmt.Sprintf("register number %d out of range", a.Val))
			return "", false
		}
		return strconv.FormatInt(a.Val, 10), true
	}
	g.staticErr(st, fmt.Sprintf("operand %s.%d has no value in this reduction", a.SymName, a.Tag))
	return "", false
}

// operand renders the checks for one pre-classified operand and returns
// the asm.Operand construction expression — the generated resolveOpd,
// with the interpreter's resolution order per shape.
func (g *prodGen) operand(st *codegen.StepView, o *codegen.OpdView) (string, bool) {
	g.imp.asm = true
	switch o.Shape {
	case codegen.OpdReg:
		n, ok := g.regAtom(st, &o.Base)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("asm.R(%s)", n), true
	case codegen.OpdImm:
		v, ok := g.atomVal(st, &o.Base)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("asm.I(%s)", v), true
	case codegen.OpdMem:
		disp, ok := g.atomVal(st, &o.Base)
		if !ok {
			return "", false
		}
		base, ok := g.regAtom(st, &o.B)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("asm.M(%s, 0, %s)", disp, base), true
	case codegen.OpdMemIdx:
		disp, ok := g.atomVal(st, &o.Base)
		if !ok {
			return "", false
		}
		base, ok := g.regAtom(st, &o.B)
		if !ok {
			return "", false
		}
		index, ok := g.regAtom(st, &o.X)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("asm.M(%s, %s, %s)", disp, index, base), true
	case codegen.OpdMemLen:
		disp, ok := g.atomVal(st, &o.Base)
		if !ok {
			return "", false
		}
		base, ok := g.regAtom(st, &o.B)
		if !ok {
			return "", false
		}
		length, ok := g.atomVal(st, &o.X)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("asm.ML(%s, %s, %s)", disp, length, base), true
	}
	g.staticErr(st, fmt.Sprintf("operand has %d address elements; at most two are allowed", o.NSub))
	return "", false
}

// step renders one compiled template, machine or semantic, inside its
// own block so per-step locals do not collide.
func (g *prodGen) step(st *codegen.StepView) {
	// Allocation operators were handled up front, like the interpreter.
	if st.Op == codegen.SemUsing || st.Op == codegen.SemNeed {
		return
	}
	fmt.Fprintf(g.b, "{ // %s (line %d)\n", st.Name, st.Line)
	defer func() {
		if !g.done {
			fmt.Fprintf(g.b, "}\n")
		} else {
			// The step ended in an unconditional return; close the block.
			fmt.Fprintf(g.b, "}\n")
		}
	}()

	switch st.Op {
	case codegen.SemMachine:
		g.machineStep(st)
	case codegen.SemModifies:
		for i := range st.Refs {
			r, ok := g.ref(st, i)
			if !ok {
				return
			}
			if r.Class == "" {
				g.staticErr(st, fmt.Sprintf("modifies %s.%d: not a register", r.SymName, r.Tag))
				return
			}
			g.wrap(st, fmt.Sprintf("rt.Modifies(%q, %d)", r.Class, r.Slot))
		}
	case codegen.SemIgnoreLHS:
		fmt.Fprintf(g.b, "rt.IgnoreLHS()\n")
	case codegen.SemIBMLength:
		r, ok := g.ref(st, 0)
		if !ok {
			return
		}
		g.wrap(st, fmt.Sprintf("rt.IBMLength(%d)", r.Slot))
	case codegen.SemPushOdd, codegen.SemPushEven:
		r, ok := g.ref(st, 0)
		if !ok {
			return
		}
		g.wrap(st, fmt.Sprintf("rt.PushHalf(%q, %q, %d, %d, %v)",
			r.Class, r.SymName, r.Tag, r.Slot, st.Op == codegen.SemPushOdd))
	case codegen.SemLoadOddAddr, codegen.SemLoadOddFull, codegen.SemLoadOddHalf, codegen.SemLoadOddReg:
		g.loadOddStep(st)
	case codegen.SemLabelLocation:
		v, ok := g.val(st, 0)
		if !ok {
			return
		}
		g.wrap(st, fmt.Sprintf("rt.DefineLabelHere(%s)", v))
	case codegen.SemLabelPntr:
		v, ok := g.val(st, 0)
		if !ok {
			return
		}
		fmt.Fprintf(g.b, "rt.AddrConst(%s)\n", v)
	case codegen.SemBranch, codegen.SemBranchIndexed:
		g.branchStep(st)
	case codegen.SemSkip:
		g.skipStep(st)
	case codegen.SemCaseLoad:
		g.caseLoadStep(st)
	case codegen.SemAbort:
		v, ok := g.val(st, 0)
		if !ok {
			return
		}
		fmt.Fprintf(g.b, "rt.Abort(%s)\n", v)
	case codegen.SemStmtRecord:
		v, ok := g.val(st, 0)
		if !ok {
			return
		}
		fmt.Fprintf(g.b, "rt.SetStmt(%s)\n", v)
	case codegen.SemListRequest:
		v, ok := g.val(st, 0)
		if !ok {
			return
		}
		fmt.Fprintf(g.b, "rt.ListRequest(%s)\n", v)
	case codegen.SemFullCommon, codegen.SemHalfCommon, codegen.SemByteCommon,
		codegen.SemRealCommon, codegen.SemDRealCommon:
		g.commonStep(st)
	case codegen.SemFindCommon, codegen.SemFindRealCommon:
		g.findCommonStep(st)
	case codegen.SemLoadExtended, codegen.SemStoreExtended, codegen.SemClearExtended:
		g.extendedStep(st)
	default:
		// Unreachable: membership was validated when the view compiled.
		g.staticErr(st, fmt.Sprintf("semantic operator %q is not implemented", st.Name))
	}
}

// machineStep renders one instruction template: each operand's checks
// in order, then the arena draw, fills, and emit — the generated
// emitMachine. (The interpreter draws the arena before resolving; the
// draw has no observable effect when resolution fails, so the emitted
// form hoists the checks to keep a statically-failing operand from
// leaving the slice declared but unused.)
func (g *prodGen) machineStep(st *codegen.StepView) {
	g.imp.asm = true
	exprs := make([]string, len(st.Opds))
	for i := range st.Opds {
		expr, ok := g.operand(st, &st.Opds[i])
		if !ok {
			return
		}
		exprs[i] = expr
	}
	fmt.Fprintf(g.b, "opds := rt.Arena(%d)\n", len(st.Opds))
	for i, expr := range exprs {
		fmt.Fprintf(g.b, "opds[%d] = %s\n", i, expr)
	}
	fmt.Fprintf(g.b, "rt.Emit(asm.Instr{Op: %q, Opds: opds})\n", st.MachOp)
}

// atomValBad reports whether atomVal would fail statically for a.
func atomValBad(a *codegen.AtomView) bool {
	return a.Slot < 0 && a.Slot != codegen.LitSlot
}

// regAtomBad reports whether regAtom would fail statically for a.
func regAtomBad(a *codegen.AtomView) bool {
	if a.Slot == codegen.LitSlot {
		return a.Val < 0 || a.Val > 15
	}
	return a.Slot < 0
}

// opdStaticBad reports whether operand would end in an unconditional
// error for o (mirrors its static checks without emitting).
func opdStaticBad(o *codegen.OpdView) bool {
	switch o.Shape {
	case codegen.OpdReg:
		return regAtomBad(&o.Base)
	case codegen.OpdImm:
		return atomValBad(&o.Base)
	case codegen.OpdMem:
		return atomValBad(&o.Base) || regAtomBad(&o.B)
	case codegen.OpdMemIdx:
		return atomValBad(&o.Base) || regAtomBad(&o.B) || regAtomBad(&o.X)
	case codegen.OpdMemLen:
		return atomValBad(&o.Base) || regAtomBad(&o.B) || atomValBad(&o.X)
	}
	return true // OpdBad
}

// loadOddStep mirrors semLoadOdd's check order: pair reference, opcode
// lookup, operand count, source operand, emit. When a later check is a
// statically-known failure the opcode result is discarded so the
// generated site still runs the lookup (its error takes precedence)
// without declaring an unused variable.
func (g *prodGen) loadOddStep(st *codegen.StepView) {
	r, ok := g.ref(st, 0)
	if !ok {
		return
	}
	srcBad := len(st.Opds) != 2 || opdStaticBad(&st.Opds[1])
	capture := "op, err"
	if srcBad {
		capture = "_, err"
	}
	fmt.Fprintf(g.b, "%s := rt.LoadOddOp(%q, %q, %q, %d)\n", capture, st.Name, r.Class, r.SymName, r.Tag)
	fmt.Fprintf(g.b, "if err != nil {\nreturn rt.TemplateErr(%d, %q, %d, err)\n}\n", g.pv.Num, st.Name, st.Line)
	if len(st.Opds) != 2 {
		g.staticErr(st, fmt.Sprintf("%s expects a pair and one source operand", st.Name))
		return
	}
	src, ok := g.operand(st, &st.Opds[1])
	if !ok {
		return
	}
	fmt.Fprintf(g.b, "rt.EmitLoadOdd(op, %d, %s)\n", r.Slot, src)
}

// branchStep mirrors semBranch: operand count, condition, label,
// scratch register, then the branch_indexed rejection.
func (g *prodGen) branchStep(st *codegen.StepView) {
	if len(st.Opds) != 3 {
		g.staticErr(st, "branch expects condition, label, and scratch register")
		return
	}
	cond, ok := g.val(st, 0)
	if !ok {
		return
	}
	label, ok := g.val(st, 1)
	if !ok {
		return
	}
	scratch, ok := g.ref(st, 2)
	if !ok {
		return
	}
	if st.Op == codegen.SemBranchIndexed {
		g.staticErr(st, "branch_indexed is expressed through case_load in this implementation")
		return
	}
	fmt.Fprintf(g.b, "rt.EmitBranch(%s, %s, %d)\n", cond, label, scratch.Slot)
}

// skipStep mirrors semSkip: operand count, condition, count with its
// 1..8 range check, scratch register.
func (g *prodGen) skipStep(st *codegen.StepView) {
	if len(st.Opds) != 3 {
		g.staticErr(st, "skip expects condition, instruction count, and scratch register")
		return
	}
	cond, ok := g.val(st, 0)
	if !ok {
		return
	}
	count, ok := g.val(st, 1)
	if !ok {
		return
	}
	if a := &st.Vals[1].Atom; a.Slot == codegen.LitSlot {
		if a.Val < 1 || a.Val > 8 {
			g.staticErr(st, fmt.Sprintf("skip count %d is outside a template sequence", a.Val))
			return
		}
	} else {
		v := g.fresh()
		g.imp.fmt = true
		fmt.Fprintf(g.b, "%s := %s\n", v, count)
		fmt.Fprintf(g.b, "if %s < 1 || %s > 8 {\nreturn rt.GenErr(fmt.Sprintf(%q, %s))\n}\n",
			v, v, fmtEscape(g.prefix(st))+"skip count %d is outside a template sequence", v)
		count = v
	}
	scratch, ok := g.ref(st, 2)
	if !ok {
		return
	}
	fmt.Fprintf(g.b, "rt.EmitSkip(%s, %s, %d)\n", cond, count, scratch.Slot)
}

// caseLoadStep mirrors semCaseLoad.
func (g *prodGen) caseLoadStep(st *codegen.StepView) {
	if len(st.Opds) != 3 {
		g.staticErr(st, "case_load expects label, index register, and scratch register")
		return
	}
	label, ok := g.val(st, 0)
	if !ok {
		return
	}
	index, ok := g.ref(st, 1)
	if !ok {
		return
	}
	scratch, ok := g.ref(st, 2)
	if !ok {
		return
	}
	fmt.Fprintf(g.b, "rt.EmitCaseLoad(%s, %d, %d)\n", label, index.Slot, scratch.Slot)
}

// commonStep mirrors semCommon for the five width variants.
func (g *prodGen) commonStep(st *codegen.StepView) {
	if len(st.Opds) != 5 {
		g.staticErr(st, "common declaration expects cse, count, register, displacement, base")
		return
	}
	id, ok := g.val(st, 0)
	if !ok {
		return
	}
	count, ok := g.val(st, 1)
	if !ok {
		return
	}
	reg, ok := g.ref(st, 2)
	if !ok {
		return
	}
	disp, ok := g.val(st, 3)
	if !ok {
		return
	}
	base, ok := g.val(st, 4)
	if !ok {
		return
	}
	if reg.Class == "" {
		g.staticErr(st, fmt.Sprintf("common register operand %s.%d is not a register", reg.SymName, reg.Tag))
		return
	}
	g.imp.cse = true
	g.wrap(st, fmt.Sprintf("rt.DefineCommon(%s, %s, %q, %d, %s, %s, %s)",
		id, count, reg.Class, reg.Slot, disp, base, widthIdent(st.Op)))
}

func widthIdent(op codegen.SemOp) string {
	switch op {
	case codegen.SemHalfCommon:
		return "cse.Half"
	case codegen.SemByteCommon:
		return "cse.Byte"
	case codegen.SemRealCommon:
		return "cse.Real"
	case codegen.SemDRealCommon:
		return "cse.DReal"
	}
	return "cse.Full"
}

// findCommonStep mirrors semFindCommon.
func (g *prodGen) findCommonStep(st *codegen.StepView) {
	if len(st.Opds) != 2 {
		g.staticErr(st, "find_common expects cse number and destination register")
		return
	}
	id, ok := g.val(st, 0)
	if !ok {
		return
	}
	dest, ok := g.ref(st, 1)
	if !ok {
		return
	}
	g.wrap(st, fmt.Sprintf("rt.FindCommon(%s, %q, %d)", id, dest.Class, dest.Slot))
}

// extendedStep mirrors semExtended: pair reference first, then the
// per-operator handling.
func (g *prodGen) extendedStep(st *codegen.StepView) {
	r, ok := g.ref(st, 0)
	if !ok {
		return
	}
	if st.Op == codegen.SemClearExtended {
		fmt.Fprintf(g.b, "rt.ClearExtended(%d)\n", r.Slot)
		return
	}
	if len(st.Opds) != 2 {
		g.staticErr(st, fmt.Sprintf("%s expects a register and a storage operand", st.Name))
		return
	}
	mem, ok := g.operand(st, &st.Opds[1])
	if !ok {
		return
	}
	// The interpreter resolves the operand, then rejects any non-Mem
	// kind; the shape decides that statically (asm.M is the only
	// constructor yielding Kind Mem).
	if sh := st.Opds[1].Shape; sh != codegen.OpdMem && sh != codegen.OpdMemIdx {
		// Keep the resolution's side effects (range checks) that the
		// interpreter would run before rejecting the kind.
		fmt.Fprintf(g.b, "_ = %s\n", mem)
		g.staticErr(st, fmt.Sprintf("%s needs a storage operand", st.Name))
		return
	}
	v := g.fresh()
	fmt.Fprintf(g.b, "%s := %s\n", v, mem)
	fmt.Fprintf(g.b, "rt.ExtendedLS(%v, %d, %s)\n", st.Op == codegen.SemStoreExtended, r.Slot, v)
}
