package emitgo_test

import (
	"testing"

	"cogg/internal/ir"
	"cogg/internal/oracle"
)

// FuzzEngineDifferential is the engine-equivalence fuzz target: any IF
// stream — well-formed, truncated, or garbage — must produce either
// byte-identical listings or identical structured errors (blocked-parse
// diagnostics included) from the interpreted and emitted engines. The
// seeds are ifsynth-generated program bodies plus handcrafted malformed
// shapes, so mutation starts from inputs that reach deep into the
// grammar.
func FuzzEngineDifferential(f *testing.F) {
	tgt, eng := newEngines(f)
	intSes, err := tgt.Gen.NewEngineSession()
	if err != nil {
		f.Fatal(err)
	}
	emitSes, err := eng.NewEngineSession()
	if err != nil {
		f.Fatal(err)
	}

	// ifsynth seeds: oracle-generated well-formed bodies.
	o := oracle.New(tgt.Mod)
	prime, err := ir.ParseTokens(oracle.DefaultPriming("amdahl470.cogg"))
	if err != nil {
		f.Fatal(err)
	}
	c, err := oracle.Generate(o, 42, 16, oracle.CorpusOptions{
		Walk: oracle.WalkConfig{Priming: prime},
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, toks := range c.Programs {
		f.Add(ir.FormatTokens(toks))
	}
	// Malformed shapes that exercise blocked-parse recovery.
	f.Add("assign fullword dsp.100")
	f.Add("iadd iadd iadd r.1 r.2")
	f.Add("dsp.100 r.13 assign fullword")
	f.Add("halfword imul r.1 r.2")
	f.Add("cse fullword dsp.100 r.13")

	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<13 {
			return // bound per-input work; long streams add no new shapes
		}
		toks, err := ir.ParseTokens(text)
		if err != nil {
			return
		}
		ref, refCounts, refErr := translate(intSes, tgt.Machine, "fuzz", toks)
		got, gotCounts, gotErr := translate(emitSes, tgt.Machine, "fuzz", toks)
		if !sameError(refErr, gotErr) {
			t.Fatalf("error divergence on %q:\ninterpreted: %T %v\nemitted:     %T %v",
				text, refErr, refErr, gotErr, gotErr)
		}
		if refErr != nil {
			return
		}
		if got != ref {
			t.Fatalf("listing divergence on %q:\n--- interpreted ---\n%s\n--- emitted ---\n%s",
				text, ref, got)
		}
		for p := range refCounts {
			if refCounts[p] != gotCounts[p] {
				t.Fatalf("ProdCounts divergence on %q: production %d: %d vs %d",
					text, p, refCounts[p], gotCounts[p])
			}
		}
	})
}
