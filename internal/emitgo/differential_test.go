package emitgo_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/codegen"
	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/oracle"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"

	amdahl470emitted "cogg/internal/emitted/amdahl470"
)

// newEngines builds the two translation paths under test: the
// interpreted generator and the checked-in emitted engine, both from
// the amdahl470 specification with the standard S/370 configuration.
func newEngines(t testing.TB) (*driver.Target, codegen.Engine) {
	t.Helper()
	tgt, err := driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := amdahl470emitted.New(rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	return tgt, eng
}

// translate runs one engine session over an IF stream and renders the
// laid-out listing; a failed translation returns the error instead.
func translate(ses codegen.EngineSession, m asm.Machine, name string, toks []ir.Token) (string, []int, error) {
	prog, res, err := ses.Generate(name, toks)
	if err != nil {
		return "", nil, err
	}
	if err := labels.Layout(prog, m); err != nil {
		return "", nil, err
	}
	return asm.Listing(prog, m), append([]int(nil), res.ProdCounts...), nil
}

// sameError reports whether two translation failures are identical
// structured errors: same concrete type, same rendered message (which
// for a BlockedError covers every collected blocked-parse diagnostic).
func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return fmt.Sprintf("%T", a) == fmt.Sprintf("%T", b) && a.Error() == b.Error()
}

// corpusSize is the differential corpus scale: quick by default, the
// acceptance-criterion 10,000 programs under COGG_CORPUS_FULL=1 (the
// CI emit-go job sets it).
func corpusSize() int {
	if os.Getenv("COGG_CORPUS_FULL") != "" {
		return 10000
	}
	return 40
}

// TestEngineDifferentialCorpus drives the ifsynth oracle corpus through
// both engines and requires byte-identical listings and identical
// production counts for every program.
func TestEngineDifferentialCorpus(t *testing.T) {
	tgt, eng := newEngines(t)
	intSes, err := tgt.Gen.NewEngineSession()
	if err != nil {
		t.Fatal(err)
	}
	emitSes, err := eng.NewEngineSession()
	if err != nil {
		t.Fatal(err)
	}

	o := oracle.New(tgt.Mod)
	prime, err := ir.ParseTokens(oracle.DefaultPriming("amdahl470.cogg"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := oracle.Generate(o, 42, corpusSize(), oracle.CorpusOptions{
		Walk: oracle.WalkConfig{Priming: prime},
		Verify: func(toks []ir.Token) ([]int, error) {
			_, res, err := intSes.Generate("synth", toks)
			if err != nil {
				return nil, err
			}
			return append([]int(nil), res.ProdCounts...), nil
		},
	})
	if err != nil {
		t.Fatalf("corpus generation: %v", err)
	}

	for i, toks := range c.Programs {
		ref, refCounts, refErr := translate(intSes, tgt.Machine, "synth", toks)
		got, gotCounts, gotErr := translate(emitSes, tgt.Machine, "synth", toks)
		if refErr != nil || gotErr != nil {
			t.Fatalf("program %d: interpreted err %v, emitted err %v", i, refErr, gotErr)
		}
		if got != ref {
			t.Fatalf("program %d: listings differ between interpreted and emitted engines\ninput: %s",
				i, ir.FormatTokens(toks))
		}
		if len(refCounts) != len(gotCounts) {
			t.Fatalf("program %d: ProdCounts length %d vs %d", i, len(refCounts), len(gotCounts))
		}
		for p := range refCounts {
			if refCounts[p] != gotCounts[p] {
				t.Fatalf("program %d: production %d reduced %d times interpreted, %d emitted",
					i, p, refCounts[p], gotCounts[p])
			}
		}
	}
}

// exampleProgram extracts the embedded Pascal source from one
// examples/<name>/main.go.
var exampleProgramRE = regexp.MustCompile("(?s)const program = `\n(.*?)`")

// TestEngineDifferentialExamples compiles every example program through
// the full pipeline twice — interpreted target and emitted engine — and
// requires byte-identical listings, with and without the CSE optimizer.
func TestEngineDifferentialExamples(t *testing.T) {
	tgt, eng := newEngines(t)
	emitted := &driver.Target{Mod: tgt.Mod, Gen: tgt.Gen, Machine: tgt.Machine, Engine: eng}

	dirs, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	tested := 0
	for _, path := range dirs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m := exampleProgramRE.FindSubmatch(src)
		if m == nil {
			continue // quickstart embeds a spec, not a program
		}
		name := filepath.Base(filepath.Dir(path))
		for _, mode := range []struct {
			tag string
			cse bool
		}{
			{"plain", false},
			{"cse", true},
		} {
			t.Run(name+"/"+mode.tag, func(t *testing.T) {
				// One optimizer per compile: the CSE numbering sequence is
				// per-Optimizer state, and both engines must see the same IF.
				opts := func() shaper.Options {
					o := shaper.Options{StatementRecords: true}
					if mode.cse {
						o.CSE = ifopt.New().Apply
					}
					return o
				}
				ref, err := tgt.Compile(name+".pas", string(m[1]), opts())
				if err != nil {
					t.Fatalf("interpreted compile: %v", err)
				}
				got, err := emitted.Compile(name+".pas", string(m[1]), opts())
				if err != nil {
					t.Fatalf("emitted compile: %v", err)
				}
				if got.Listing() != ref.Listing() {
					t.Fatalf("listings differ between interpreted and emitted engines")
				}
				tested++
			})
		}
	}
	if tested == 0 {
		t.Fatal("no example programs extracted")
	}
}

// TestEngineDifferentialErrors drives malformed and blocked IF through
// both engines and requires identical structured errors — including the
// blocked-parse diagnostics collected during resynchronization.
func TestEngineDifferentialErrors(t *testing.T) {
	tgt, eng := newEngines(t)

	cases := []string{
		"",                             // empty input
		"assign fullword dsp.100",      // truncated mid-statement
		"iadd iadd iadd r.1 r.2",       // operators without operands
		"dsp.100 r.13 assign fullword", // operands before any operator
		"halfword imul r.1 r.2",        // undeclared symbol
		"cse fullword dsp.100 r.13",    // symbol kind illegal in IF
		"assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword", // truncated operand
	}
	for i, text := range cases {
		toks, err := ir.ParseTokens(text)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_, _, refErr := tgt.Gen.Generate("err", toks)
		_, _, gotErr := eng.Generate("err", toks)
		if !sameError(refErr, gotErr) {
			t.Errorf("case %d (%q):\ninterpreted: %T %v\nemitted:     %T %v",
				i, text, refErr, refErr, gotErr, gotErr)
		}
	}
}
