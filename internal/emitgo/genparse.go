package emitgo

import (
	"fmt"
	"sort"

	"cogg/internal/grammar"
)

// parseFile renders the generated skeletal parser: the symbol lookup as
// a string switch and the main loop, mirroring the interpreted
// run.parse statement for statement. Everything that touches run state
// goes through the EmitRT methods; the generated code contributes the
// compiled dispatch (symOf, lookupAction, reduceFns).
func (e *emitter) parseFile() []byte {
	gr := e.mod.Grammar
	b := e.file("fmt", "", "cogg/internal/lr")

	// Mirror the grammar's byName semantics: symbols are entered in ID
	// order and a later declaration of the same name wins.
	byName := map[string]grammar.Symbol{}
	for _, s := range gr.Syms {
		byName[s.Name] = s
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(b, "// symOf maps an IF token symbol name to its parser symbol id. For a\n")
	fmt.Fprintf(b, "// declared symbol that cannot occur in the intermediate form it\n")
	fmt.Fprintf(b, "// returns -1 with the diagnostic; for an undeclared name, -1 and \"\".\n")
	fmt.Fprintf(b, "func symOf(name string) (int, string) {\n")
	fmt.Fprintf(b, "\tswitch name {\n")
	for _, n := range names {
		s := byName[n]
		switch s.Kind {
		case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
			fmt.Fprintf(b, "\tcase %q:\n\t\treturn %d, \"\"\n", n, s.ID)
		default:
			msg := fmt.Sprintf("%s %q cannot occur in the intermediate form", s.Kind, n)
			fmt.Fprintf(b, "\tcase %q:\n\t\treturn -1, %q\n", n, msg)
		}
	}
	fmt.Fprintf(b, "\t}\n")
	fmt.Fprintf(b, "\treturn -1, \"\"\n")
	fmt.Fprintf(b, "}\n\n")

	fmt.Fprintf(b, `// parse drives the skeletal LR parser to completion — the generated
// twin of the interpreter's main loop, with the action dispatch
// compiled into lookupAction and the reductions into reduceFns.
func (s *session) parse() error {
	rt := s.rt
	rt.InitParse()
	limit := rt.StepLimit()
	for steps := 0; ; steps++ {
		if steps > limit {
			return rt.LoopError()
		}
		if err := rt.CodeErr(); err != nil {
			return err
		}
		tok, ok := rt.Peek()
		sym := eofSym
		if ok {
			id, badKind := symOf(tok.Sym)
			if id < 0 {
				reason := badKind
				if reason == "" {
					reason = fmt.Sprintf("symbol %%q is not declared in the code generator specification", tok.Sym)
				}
				if rt.Block(tok, true, reason) {
					continue
				}
				return rt.Finish()
			}
			sym = id
		}
		act := lookupAction(rt.State(), sym)
		if rt.Tracing() {
			rt.TraceAction(tok, ok, act)
		}
		switch act.Kind() {
		case lr.Accept:
			return rt.Accept()
		case lr.Shift:
			if err := rt.Shift(act.Target(), sym, tok.Val); err != nil {
				return err
			}
		case lr.Reduce:
			if err := reduceFns[act.Target()](s); err != nil {
				return err
			}
		default:
			if rt.Block(tok, ok, "no action; the specification cannot translate this IF shape") {
				continue
			}
			return rt.Finish()
		}
	}
}
`)
	return b.Bytes()
}
