package s370

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleGolden(t *testing.T) {
	cases := []struct {
		text string
		want []byte
	}{
		{"lr r1,r2", []byte{0x18, 0x12}},
		{"l r1,100(r3,r13)", []byte{0x58, 0x13, 0xD0, 0x64}},
		{"l r1,100(r13)", []byte{0x58, 0x10, 0xD0, 0x64}},
		{"bc 8,0x123(r11)", []byte{0x47, 0x80, 0xB1, 0x23}},
		{"bcr 15,r14", []byte{0x07, 0xFE}},
		{"sla r1,2", []byte{0x8B, 0x10, 0x00, 0x02}},
		{"stm r14,r12,0(r13)", []byte{0x90, 0xEC, 0xD0, 0x00}},
		{"mvi 10(r13),1", []byte{0x92, 0x01, 0xD0, 0x0A}},
		{"mvc 8(7,r13),16(r13)", []byte{0xD2, 0x07, 0xD0, 0x08, 0xD0, 0x10}},
	}
	for _, c := range cases {
		got, err := AssembleTo(c.text)
		if err != nil {
			t.Fatalf("AssembleTo(%q): %v", c.text, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%q: % X, want % X", c.text, got, c.want)
		}
	}
}

func TestAssembleProgram(t *testing.T) {
	b, err := AssembleTo(`
* a tiny routine
  l   r1,96(r13)      ; load X
  a   r1,100(r13)
  st  r1,96(r13)
  bcr 15,r14
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 14 {
		t.Errorf("assembled %d bytes, want 14", len(b))
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, bad := range []string{
		"nosuch r1,r2",
		"l r1",            // missing operand
		"l r1,5000(r13)",  // displacement too large
		"lr r1,r16",       // bad register
		"l r1,100(r3,r13", // unbalanced
		"mvi 10(r13),300", // immediate out of range
	} {
		if _, err := AssembleTo(bad); err == nil {
			t.Errorf("AssembleTo(%q) succeeded", bad)
		}
	}
}

// TestQuickFormatAssembleRoundTrip: formatting a random instruction and
// assembling the text reproduces the original encoding.
func TestQuickFormatAssembleRoundTrip(t *testing.T) {
	m := NewMachine(0x8000)
	names := make([]string, 0, len(Ops))
	for name := range Ops {
		names = append(names, name)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 12; trial++ {
			name := names[r.Intn(len(names))]
			info, _ := Lookup(name)
			in := randomInstr(r, name, info)
			b1, err := m.Encode(nil, &in)
			if err != nil {
				return false
			}
			text := m.Format(&in)
			// Register-count shifts format as 0(rN); assemble handles it.
			b2, err := AssembleTo(text)
			if err != nil {
				t.Logf("assemble %q: %v", text, err)
				return false
			}
			if !bytes.Equal(b1, b2) {
				t.Logf("%q: % X vs % X", text, b1, b2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAssembleMatchesRuntimeStubs: the hand-encoded constant-area stubs
// agree with their assembly-text form.
func TestAssembleMatchesRuntimeStub(t *testing.T) {
	got, err := AssembleTo(`
  st  r13,2112(r13)
  la  r13,2048(r13)
  bcr 15,r14
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x50, 0xD0, 0xD8, 0x40, // st r13,2112(r13)
		0x41, 0xD0, 0xD8, 0x00, // la r13,2048(r13)
		0x07, 0xFE,
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stub: % X, want % X", got, want)
	}
	_ = strings.TrimSpace("")
}
