// Package s370 models the IBM System/370 instruction subset of the
// Amdahl 470 that the Pascal code generator specification emits: the
// opcode catalogue, instruction encoder and formatter, and the
// asm.Machine implementation used for layout and object generation.
package s370

import "fmt"

// Format is an instruction format of the architecture.
type Format uint8

const (
	RR Format = iota // op r1,r2            (2 bytes)
	RX               // op r1,d2(x2,b2)     (4 bytes)
	RS               // op r1,r3,d2(b2)     (4 bytes)
	SI               // op d1(b1),i2        (4 bytes)
	SS               // op d1(l,b1),d2(b2)  (6 bytes)
)

// Size returns the byte length of instructions of the format.
func (f Format) Size() int {
	switch f {
	case RR:
		return 2
	case SS:
		return 6
	default:
		return 4
	}
}

// OpInfo describes one machine opcode.
type OpInfo struct {
	Name   string
	Code   byte
	Format Format
	// Mask marks RR/RX opcodes whose r1 field is a condition mask
	// rather than a register (BC, BCR).
	Mask bool
	// Shift marks RS opcodes whose second operand is a shift amount and
	// whose r3 field is unused (SLA, SRDA, ...).
	Shift bool
}

// Ops is the opcode catalogue, keyed by lower-case mnemonic as written in
// code generator specifications.
var Ops = map[string]OpInfo{
	// RR integer and logical.
	"lr":   {Code: 0x18, Format: RR},
	"ltr":  {Code: 0x12, Format: RR},
	"lcr":  {Code: 0x13, Format: RR},
	"lpr":  {Code: 0x10, Format: RR},
	"lnr":  {Code: 0x11, Format: RR},
	"ar":   {Code: 0x1A, Format: RR},
	"sr":   {Code: 0x1B, Format: RR},
	"mr":   {Code: 0x1C, Format: RR},
	"dr":   {Code: 0x1D, Format: RR},
	"alr":  {Code: 0x1E, Format: RR},
	"slr":  {Code: 0x1F, Format: RR},
	"cr":   {Code: 0x19, Format: RR},
	"clr":  {Code: 0x15, Format: RR},
	"nr":   {Code: 0x14, Format: RR},
	"or":   {Code: 0x16, Format: RR},
	"xr":   {Code: 0x17, Format: RR},
	"bcr":  {Code: 0x07, Format: RR, Mask: true},
	"balr": {Code: 0x05, Format: RR},
	"bctr": {Code: 0x06, Format: RR},
	"mvcl": {Code: 0x0E, Format: RR},
	"clcl": {Code: 0x0F, Format: RR},
	"spm":  {Code: 0x04, Format: RR},

	// RR floating point (long and short forms).
	"ldr":  {Code: 0x28, Format: RR},
	"lcdr": {Code: 0x23, Format: RR},
	"lpdr": {Code: 0x20, Format: RR},
	"lndr": {Code: 0x21, Format: RR},
	"ltdr": {Code: 0x22, Format: RR},
	"hdr":  {Code: 0x24, Format: RR},
	"adr":  {Code: 0x2A, Format: RR},
	"sdr":  {Code: 0x2B, Format: RR},
	"mdr":  {Code: 0x2C, Format: RR},
	"ddr":  {Code: 0x2D, Format: RR},
	"cdr":  {Code: 0x29, Format: RR},
	"ler":  {Code: 0x38, Format: RR},
	"lcer": {Code: 0x33, Format: RR},
	"lper": {Code: 0x30, Format: RR},
	"her":  {Code: 0x34, Format: RR},
	"aer":  {Code: 0x3A, Format: RR},
	"ser":  {Code: 0x3B, Format: RR},
	"mer":  {Code: 0x3C, Format: RR},
	"der":  {Code: 0x3D, Format: RR},
	"cer":  {Code: 0x39, Format: RR},
	"ldxr": {Code: 0x25, Format: RR}, // extended (quad) move, modeled
	"axr":  {Code: 0x36, Format: RR}, // extended add
	"sxr":  {Code: 0x37, Format: RR}, // extended subtract
	"mxr":  {Code: 0x26, Format: RR}, // extended multiply

	// RX integer and logical.
	"l":   {Code: 0x58, Format: RX},
	"lh":  {Code: 0x48, Format: RX},
	"la":  {Code: 0x41, Format: RX},
	"st":  {Code: 0x50, Format: RX},
	"sth": {Code: 0x40, Format: RX},
	"stc": {Code: 0x42, Format: RX},
	"ic":  {Code: 0x43, Format: RX},
	"ex":  {Code: 0x44, Format: RX},
	"a":   {Code: 0x5A, Format: RX},
	"ah":  {Code: 0x4A, Format: RX},
	"al":  {Code: 0x5E, Format: RX},
	"s":   {Code: 0x5B, Format: RX},
	"sh":  {Code: 0x4B, Format: RX},
	"sl":  {Code: 0x5F, Format: RX},
	"m":   {Code: 0x5C, Format: RX},
	"mh":  {Code: 0x4C, Format: RX},
	"d":   {Code: 0x5D, Format: RX},
	"c":   {Code: 0x59, Format: RX},
	"ch":  {Code: 0x49, Format: RX},
	"cl":  {Code: 0x55, Format: RX},
	"n":   {Code: 0x54, Format: RX},
	"o":   {Code: 0x56, Format: RX},
	"x":   {Code: 0x57, Format: RX},
	"bc":  {Code: 0x47, Format: RX, Mask: true},
	"bal": {Code: 0x45, Format: RX},
	"bct": {Code: 0x46, Format: RX},
	"cvb": {Code: 0x4F, Format: RX},
	"cvd": {Code: 0x4E, Format: RX},

	// RX floating point.
	"ld":  {Code: 0x68, Format: RX},
	"std": {Code: 0x60, Format: RX},
	"ad":  {Code: 0x6A, Format: RX},
	"sd":  {Code: 0x6B, Format: RX},
	"md":  {Code: 0x6C, Format: RX},
	"dd":  {Code: 0x6D, Format: RX},
	"cd":  {Code: 0x69, Format: RX},
	"le":  {Code: 0x78, Format: RX},
	"ste": {Code: 0x70, Format: RX},
	"ae":  {Code: 0x7A, Format: RX},
	"se":  {Code: 0x7B, Format: RX},
	"me":  {Code: 0x7C, Format: RX},
	"de":  {Code: 0x7D, Format: RX},
	"ce":  {Code: 0x79, Format: RX},

	// RS.
	"lm":   {Code: 0x98, Format: RS},
	"stm":  {Code: 0x90, Format: RS},
	"bxh":  {Code: 0x86, Format: RS},
	"bxle": {Code: 0x87, Format: RS},
	"sll":  {Code: 0x89, Format: RS, Shift: true},
	"srl":  {Code: 0x88, Format: RS, Shift: true},
	"sla":  {Code: 0x8B, Format: RS, Shift: true},
	"sra":  {Code: 0x8A, Format: RS, Shift: true},
	"sldl": {Code: 0x8D, Format: RS, Shift: true},
	"srdl": {Code: 0x8C, Format: RS, Shift: true},
	"slda": {Code: 0x8F, Format: RS, Shift: true},
	"srda": {Code: 0x8E, Format: RS, Shift: true},

	// SI.
	"mvi": {Code: 0x92, Format: SI},
	"cli": {Code: 0x95, Format: SI},
	"ni":  {Code: 0x94, Format: SI},
	"oi":  {Code: 0x96, Format: SI},
	"xi":  {Code: 0x97, Format: SI},
	"tm":  {Code: 0x91, Format: SI},

	// SS.
	"mvc": {Code: 0xD2, Format: SS},
	"clc": {Code: 0xD5, Format: SS},
	"nc":  {Code: 0xD4, Format: SS},
	"oc":  {Code: 0xD6, Format: SS},
	"xc":  {Code: 0xD7, Format: SS},
	"mvn": {Code: 0xD1, Format: SS},
	"mvz": {Code: 0xD3, Format: SS},
}

// byCode maps opcode byte back to OpInfo for decoding.
var byCode = func() map[byte]OpInfo {
	m := make(map[byte]OpInfo, len(Ops))
	for name, info := range Ops {
		info.Name = name
		if old, dup := m[info.Code]; dup {
			panic(fmt.Sprintf("s370: opcode %#x assigned to both %s and %s", info.Code, old.Name, name))
		}
		m[info.Code] = info
	}
	return m
}()

// Lookup returns the OpInfo for a mnemonic.
func Lookup(mnemonic string) (OpInfo, bool) {
	info, ok := Ops[mnemonic]
	if ok {
		info.Name = mnemonic
	}
	return info, ok
}

// Decode returns the OpInfo for an opcode byte.
func Decode(code byte) (OpInfo, bool) {
	info, ok := byCode[code]
	return info, ok
}

// Condition mask bits of BC/BCR: bit 8 selects condition code 0, bit 4
// code 1, bit 2 code 2, bit 1 code 3.
const (
	CondEqual    = 8  // CC0: equal / zero / all selected bits zero
	CondLow      = 4  // CC1: first operand low / negative / bits mixed
	CondHigh     = 2  // CC2: first operand high / positive
	CondOverflow = 1  // CC3: overflow / all selected bits one
	CondAlways   = 15 // unconditional
)
