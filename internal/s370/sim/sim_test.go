package sim_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cogg/internal/asm"
	"cogg/internal/s370"
	"cogg/internal/s370/sim"
)

// assemble encodes a sequence of instructions at 0x100 followed by
// `bcr 15,r14` and returns a CPU ready to run them.
func assemble(t *testing.T, ins ...asm.Instr) *sim.CPU {
	t.Helper()
	m := s370.NewMachine(0x8000)
	c := sim.New(0x20000)
	addr := 0x100
	ins = append(ins, asm.Instr{Op: "bcr", Opds: []asm.Operand{asm.I(15), asm.R(14)}})
	for i := range ins {
		b, err := m.Encode(nil, &ins[i])
		if err != nil {
			t.Fatalf("encode %s: %v", ins[i].Op, err)
		}
		if err := c.Load(addr, b); err != nil {
			t.Fatal(err)
		}
		addr += len(b)
	}
	c.PC = 0x100
	c.R[14] = c.HaltAddr
	return c
}

// u32 reinterprets a signed value as a register image.
func u32(v int32) uint32 { return uint32(v) }

func run(t *testing.T, c *sim.CPU) {
	t.Helper()
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("not halted")
	}
}

func TestLoadStore(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(0x200, 0, 0)}},
		asm.Instr{Op: "st", Opds: []asm.Operand{asm.R(1), asm.M(0x204, 0, 0)}},
		asm.Instr{Op: "lh", Opds: []asm.Operand{asm.R(2), asm.M(0x208, 0, 0)}},
		asm.Instr{Op: "sth", Opds: []asm.Operand{asm.R(2), asm.M(0x20C, 0, 0)}},
		asm.Instr{Op: "ic", Opds: []asm.Operand{asm.R(3), asm.M(0x208, 0, 0)}},
		asm.Instr{Op: "stc", Opds: []asm.Operand{asm.R(3), asm.M(0x20E, 0, 0)}},
		asm.Instr{Op: "la", Opds: []asm.Operand{asm.R(4), asm.M(0x7FF, 0, 0)}},
	)
	c.SetWord(0x200, -123456)
	c.SetHalf(0x208, -42)
	run(t, c)
	if v, _ := c.Word(0x204); v != -123456 {
		t.Errorf("ST result %d", v)
	}
	if v, _ := c.Half(0x20C); v != -42 {
		t.Errorf("STH result %d", v)
	}
	if int32(c.R[2]) != -42 {
		t.Errorf("LH sign extension: %d", int32(c.R[2]))
	}
	if b, _ := c.Byte(0x20E); b != 0xFF {
		t.Errorf("IC/STC byte %#x", b)
	}
	if c.R[4] != 0x7FF {
		t.Errorf("LA = %#x", c.R[4])
	}
}

func TestArithmeticAndCC(t *testing.T) {
	cases := []struct {
		name   string
		a, b   int32
		op     string
		want   int32
		wantCC uint8
	}{
		{"add-pos", 3, 4, "ar", 7, 2},
		{"add-neg", 3, -4, "ar", -1, 1},
		{"add-zero", 4, -4, "ar", 0, 0},
		{"add-overflow", math.MaxInt32, 1, "ar", math.MinInt32, 3},
		{"sub", 10, 4, "sr", 6, 2},
		{"sub-underflow", math.MinInt32, 1, "sr", math.MaxInt32, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := assemble(t, asm.Instr{Op: tc.op, Opds: []asm.Operand{asm.R(1), asm.R(2)}})
			c.R[1], c.R[2] = uint32(tc.a), uint32(tc.b)
			run(t, c)
			if int32(c.R[1]) != tc.want || c.CC != tc.wantCC {
				t.Errorf("%s: r1=%d cc=%d, want %d cc=%d", tc.op, int32(c.R[1]), c.CC, tc.want, tc.wantCC)
			}
		})
	}
}

func TestMultiplyDivide(t *testing.T) {
	// MR multiplies the odd register of the pair by the operand.
	c := assemble(t, asm.Instr{Op: "mr", Opds: []asm.Operand{asm.R(2), asm.R(5)}})
	c.R[3] = u32(-7)
	c.R[5] = 6
	run(t, c)
	if int32(c.R[3]) != -42 || int32(c.R[2]) != -1 {
		t.Errorf("MR: pair = %d:%d", int32(c.R[2]), int32(c.R[3]))
	}

	// DR divides the 64-bit pair: quotient odd, remainder even.
	c = assemble(t,
		asm.Instr{Op: "srda", Opds: []asm.Operand{asm.R(2), asm.I(32)}},
		asm.Instr{Op: "dr", Opds: []asm.Operand{asm.R(2), asm.R(5)}},
	)
	c.R[2] = u32(-100)
	c.R[5] = 7
	run(t, c)
	if int32(c.R[3]) != -14 || int32(c.R[2]) != -2 {
		t.Errorf("DR: quotient %d remainder %d, want -14 and -2 (truncating)", int32(c.R[3]), int32(c.R[2]))
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "dr", Opds: []asm.Operand{asm.R(2), asm.R(5)}})
	c.R[3] = 10
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Errorf("err = %v", err)
	}
}

func TestOddPairFaults(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "mr", Opds: []asm.Operand{asm.R(3), asm.R(5)}})
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "pair") {
		t.Errorf("err = %v", err)
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b   int32
		wantCC uint8
	}{{5, 5, 0}, {4, 5, 1}, {6, 5, 2}, {-1, 1, 1}} {
		c := assemble(t, asm.Instr{Op: "cr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
		c.R[1], c.R[2] = uint32(tc.a), uint32(tc.b)
		run(t, c)
		if c.CC != tc.wantCC {
			t.Errorf("CR %d:%d cc=%d, want %d", tc.a, tc.b, c.CC, tc.wantCC)
		}
	}
	// CLR is unsigned: -1 compares high.
	c := assemble(t, asm.Instr{Op: "clr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
	c.R[1], c.R[2] = ^uint32(0), 1
	run(t, c)
	if c.CC != 2 {
		t.Errorf("CLR cc=%d, want 2", c.CC)
	}
}

func TestShifts(t *testing.T) {
	cases := []struct {
		op     string
		val    int32
		amount int64
		want   int32
	}{
		{"sla", 3, 2, 12},
		{"sla", -3, 2, -12},
		{"sra", -12, 2, -3},
		{"sll", 1, 31, math.MinInt32},
		{"srl", -1, 28, 15},
	}
	for _, tc := range cases {
		c := assemble(t, asm.Instr{Op: tc.op, Opds: []asm.Operand{asm.R(1), asm.I(tc.amount)}})
		c.R[1] = uint32(tc.val)
		run(t, c)
		if int32(c.R[1]) != tc.want {
			t.Errorf("%s %d by %d = %d, want %d", tc.op, tc.val, tc.amount, int32(c.R[1]), tc.want)
		}
	}
}

func TestDoubleShifts(t *testing.T) {
	// SRDA r2,32: sign extend r2 into the pair (the division prelude).
	c := assemble(t, asm.Instr{Op: "srda", Opds: []asm.Operand{asm.R(2), asm.I(32)}})
	c.R[2] = u32(-5)
	run(t, c)
	if int32(c.R[2]) != -1 || int32(c.R[3]) != -5 {
		t.Errorf("SRDA 32: pair %d:%d, want -1:-5", int32(c.R[2]), int32(c.R[3]))
	}
	// SLDA by 4.
	c = assemble(t, asm.Instr{Op: "slda", Opds: []asm.Operand{asm.R(2), asm.I(4)}})
	c.R[2], c.R[3] = 0, 0x10
	run(t, c)
	if c.R[3] != 0x100 || c.R[2] != 0 {
		t.Errorf("SLDA 4: pair %#x:%#x", c.R[2], c.R[3])
	}
}

func TestLogical(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "nr", Opds: []asm.Operand{asm.R(1), asm.R(2)}},
		asm.Instr{Op: "or", Opds: []asm.Operand{asm.R(3), asm.R(2)}},
		asm.Instr{Op: "xr", Opds: []asm.Operand{asm.R(4), asm.R(2)}},
	)
	c.R[1], c.R[2], c.R[3], c.R[4] = 0b1100, 0b1010, 0b0001, 0b1010
	run(t, c)
	if c.R[1] != 0b1000 || c.R[3] != 0b1011 || c.R[4] != 0 {
		t.Errorf("logical results %b %b %b", c.R[1], c.R[3], c.R[4])
	}
	if c.CC != 0 {
		t.Errorf("XR zero result must set CC0, got %d", c.CC)
	}
}

func TestTMConditions(t *testing.T) {
	for _, tc := range []struct {
		mem    byte
		mask   int64
		wantCC uint8
	}{
		{0x00, 0x01, 0}, // all selected zero
		{0x01, 0x01, 3}, // all selected one
		{0x01, 0x03, 1}, // mixed
		{0xFF, 0xF0, 3},
	} {
		c := assemble(t, asm.Instr{Op: "tm", Opds: []asm.Operand{asm.M(0x300, 0, 0), asm.I(tc.mask)}})
		c.SetByte(0x300, tc.mem)
		run(t, c)
		if c.CC != tc.wantCC {
			t.Errorf("TM %#x mask %#x: cc=%d, want %d", tc.mem, tc.mask, c.CC, tc.wantCC)
		}
	}
}

func TestBranches(t *testing.T) {
	// BC 8 skips an LA when equal.
	c := assemble(t,
		asm.Instr{Op: "cr", Opds: []asm.Operand{asm.R(1), asm.R(2)}},
		asm.Instr{Op: "bc", Opds: []asm.Operand{asm.I(8), asm.M(0x10A, 0, 0)}},
		asm.Instr{Op: "la", Opds: []asm.Operand{asm.R(5), asm.M(99, 0, 0)}},
	)
	c.R[1], c.R[2] = 7, 7
	run(t, c)
	if c.R[5] == 99 {
		t.Error("taken branch executed the skipped instruction")
	}
	// BCT loops: sum 5 iterations.
	c = assemble(t,
		asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(2), asm.R(3)}},
		asm.Instr{Op: "bct", Opds: []asm.Operand{asm.R(1), asm.M(0x100, 0, 0)}},
	)
	c.R[1], c.R[2], c.R[3] = 5, 0, 10
	run(t, c)
	if c.R[2] != 50 {
		t.Errorf("BCT loop sum = %d", c.R[2])
	}
	// BALR records the return address.
	c = assemble(t, asm.Instr{Op: "balr", Opds: []asm.Operand{asm.R(6), asm.R(0)}})
	run(t, c)
	if c.R[6] != 0x102 {
		t.Errorf("BALR link = %#x", c.R[6])
	}
}

func TestBCTRDecrementOnly(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "bctr", Opds: []asm.Operand{asm.R(1), asm.R(0)}})
	c.R[1] = 10
	run(t, c)
	if c.R[1] != 9 {
		t.Errorf("BCTR r1,0 = %d", c.R[1])
	}
}

func TestStoreMultipleWraps(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "stm", Opds: []asm.Operand{asm.R(14), asm.R(12), asm.M(0x400, 0, 0)}},
		asm.Instr{Op: "lm", Opds: []asm.Operand{asm.R(14), asm.R(12), asm.M(0x400, 0, 0)}},
	)
	for i := range c.R {
		c.R[i] = uint32(i * 100)
	}
	c.R[14] = c.HaltAddr
	run(t, c)
	// r14,r15,r0..r12 stored: 15 registers.
	if v, _ := c.Word(0x400 + 4); v != 1500 {
		t.Errorf("second stored register = %d, want r15=1500", v)
	}
	if v, _ := c.Word(0x400 + 2*4); v != 0 {
		t.Errorf("third stored register = %d, want r0=0", v)
	}
	if v, _ := c.Word(0x400 + 14*4); v != 1200 {
		t.Errorf("last stored register = %d, want r12=1200", v)
	}
}

func TestMVCAndXC(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "mvc", Opds: []asm.Operand{asm.ML(0x500, 7, 0), asm.M(0x510, 0, 0)}},
		asm.Instr{Op: "xc", Opds: []asm.Operand{asm.ML(0x520, 3, 0), asm.M(0x520, 0, 0)}},
	)
	copy(c.Mem[0x510:], "ABCDEFGH")
	copy(c.Mem[0x520:], "WXYZ")
	run(t, c)
	if got := string(c.Mem[0x500:0x508]); got != "ABCDEFGH" {
		t.Errorf("MVC copied %q", got)
	}
	if v, _ := c.Word(0x520); v != 0 {
		t.Errorf("XC self-clear = %#x", v)
	}
}

func TestMVCL(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "mvcl", Opds: []asm.Operand{asm.R(2), asm.R(4)}})
	copy(c.Mem[0x600:], "HELLO")
	c.R[2], c.R[3] = 0x700, 10           // destination, length 10
	c.R[4], c.R[5] = 0x600, 5|0x2A000000 // source length 5, pad '*'
	run(t, c)
	if got := string(c.Mem[0x700:0x70A]); got != "HELLO*****" {
		t.Errorf("MVCL result %q", got)
	}
	if c.CC != 2 {
		t.Errorf("MVCL cc=%d (dest longer), want 2", c.CC)
	}
}

func TestFloating(t *testing.T) {
	m := s370.NewMachine(0x8000)
	_ = m
	c := assemble(t,
		asm.Instr{Op: "ld", Opds: []asm.Operand{asm.R(0), asm.M(0x800, 0, 0)}},
		asm.Instr{Op: "ad", Opds: []asm.Operand{asm.R(0), asm.M(0x808, 0, 0)}},
		asm.Instr{Op: "mdr", Opds: []asm.Operand{asm.R(0), asm.R(0)}},
		asm.Instr{Op: "std", Opds: []asm.Operand{asm.R(0), asm.M(0x810, 0, 0)}},
	)
	put := func(addr uint32, f float64) {
		bits := math.Float64bits(f)
		c.SetWord(addr, int32(uint32(bits>>32)))
		c.SetWord(addr+4, int32(uint32(bits)))
	}
	put(0x800, 2.5)
	put(0x808, 1.5)
	run(t, c)
	hi, _ := c.Word(0x810)
	lo, _ := c.Word(0x814)
	got := math.Float64frombits(uint64(uint32(hi))<<32 | uint64(uint32(lo)))
	if got != 16.0 {
		t.Errorf("(2.5+1.5)^2 = %v", got)
	}
}

func TestFaults(t *testing.T) {
	// Unknown opcode.
	c := sim.New(0x1000)
	c.Mem[0x100] = 0xFF
	c.PC = 0x100
	if err := c.Step(); err == nil {
		t.Error("unknown opcode did not fault")
	}
	// Out-of-storage access.
	c2 := assemble(t, asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(0xFFF, 0, 12)}})
	c2.R[12] = 0x1F000
	if err := c2.Run(10); err == nil {
		t.Error("out-of-storage load did not fault")
	}
	// Step limit.
	c3 := assemble(t, asm.Instr{Op: "bc", Opds: []asm.Operand{asm.I(15), asm.M(0x100, 0, 0)}})
	if err := c3.Run(50); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("runaway loop: %v", err)
	}
}

// TestQuickALUMatchesGo cross-checks AR/SR/MR against Go arithmetic over
// random operands.
func TestQuickALUMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		c := assemble(t, asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
		c.R[1], c.R[2] = uint32(a), uint32(b)
		if err := c.Run(10); err != nil {
			return false
		}
		if int32(c.R[1]) != a+b {
			return false
		}
		c = assemble(t, asm.Instr{Op: "mr", Opds: []asm.Operand{asm.R(2), asm.R(5)}})
		c.R[3], c.R[5] = uint32(a), uint32(b)
		if err := c.Run(10); err != nil {
			return false
		}
		prod := int64(a) * int64(b)
		return int32(c.R[3]) == int32(prod) && int32(c.R[2]) == int32(prod>>32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDivideMatchesGo checks the SRDA/DR sequence against Go's
// truncating division.
func TestQuickDivideMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		if a == math.MinInt32 && b == -1 {
			return true // overflow case: quotient unrepresentable
		}
		c := assemble(t,
			asm.Instr{Op: "srda", Opds: []asm.Operand{asm.R(2), asm.I(32)}},
			asm.Instr{Op: "dr", Opds: []asm.Operand{asm.R(2), asm.R(5)}},
		)
		c.R[2], c.R[5] = uint32(a), uint32(b)
		if err := c.Run(10); err != nil {
			return false
		}
		return int32(c.R[3]) == a/b && int32(c.R[2]) == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
