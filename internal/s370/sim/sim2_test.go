package sim_test

import (
	"math"
	"testing"

	"cogg/internal/asm"
)

func TestLoadVariantsCC(t *testing.T) {
	cases := []struct {
		op     string
		in     int32
		want   int32
		wantCC uint8
	}{
		{"ltr", -5, -5, 1},
		{"ltr", 0, 0, 0},
		{"ltr", 9, 9, 2},
		{"lcr", 5, -5, 1},
		{"lcr", -5, 5, 2},
		{"lcr", 0, 0, 0},
		{"lpr", -7, 7, 2},
		{"lpr", 7, 7, 2},
		{"lnr", 7, -7, 1},
		{"lnr", -7, -7, 1},
		{"lnr", 0, 0, 0},
	}
	for _, tc := range cases {
		c := assemble(t, asm.Instr{Op: tc.op, Opds: []asm.Operand{asm.R(1), asm.R(2)}})
		c.R[2] = u32(tc.in)
		run(t, c)
		if int32(c.R[1]) != tc.want || c.CC != tc.wantCC {
			t.Errorf("%s(%d): r1=%d cc=%d, want %d cc=%d",
				tc.op, tc.in, int32(c.R[1]), c.CC, tc.want, tc.wantCC)
		}
	}
}

func TestLogicalAddSubtract(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "alr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
	c.R[1], c.R[2] = 0xFFFFFFFF, 2
	run(t, c)
	if c.R[1] != 1 {
		t.Errorf("ALR wrap: %#x", c.R[1])
	}
	c = assemble(t, asm.Instr{Op: "slr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
	c.R[1], c.R[2] = 1, 2
	run(t, c)
	if c.R[1] != 0xFFFFFFFF {
		t.Errorf("SLR wrap: %#x", c.R[1])
	}
}

func TestImmediateStorageOps(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "mvi", Opds: []asm.Operand{asm.M(0x300, 0, 0), asm.I(0xAB)}},
		asm.Instr{Op: "oi", Opds: []asm.Operand{asm.M(0x301, 0, 0), asm.I(0x0F)}},
		asm.Instr{Op: "ni", Opds: []asm.Operand{asm.M(0x302, 0, 0), asm.I(0xF0)}},
		asm.Instr{Op: "xi", Opds: []asm.Operand{asm.M(0x303, 0, 0), asm.I(0xFF)}},
		asm.Instr{Op: "cli", Opds: []asm.Operand{asm.M(0x300, 0, 0), asm.I(0xAB)}},
	)
	c.SetByte(0x301, 0x30)
	c.SetByte(0x302, 0x37)
	c.SetByte(0x303, 0x55)
	run(t, c)
	if b, _ := c.Byte(0x300); b != 0xAB {
		t.Errorf("MVI: %#x", b)
	}
	if b, _ := c.Byte(0x301); b != 0x3F {
		t.Errorf("OI: %#x", b)
	}
	if b, _ := c.Byte(0x302); b != 0x30 {
		t.Errorf("NI: %#x", b)
	}
	if b, _ := c.Byte(0x303); b != 0xAA {
		t.Errorf("XI: %#x", b)
	}
	if c.CC != 0 {
		t.Errorf("CLI equal: cc=%d", c.CC)
	}
}

func TestCLCOrders(t *testing.T) {
	for _, tc := range []struct {
		a, b   string
		wantCC uint8
	}{
		{"ABC", "ABC", 0},
		{"ABB", "ABC", 1},
		{"ABD", "ABC", 2},
	} {
		c := assemble(t, asm.Instr{Op: "clc", Opds: []asm.Operand{asm.ML(0x400, 2, 0), asm.M(0x410, 0, 0)}})
		copy(c.Mem[0x400:], tc.a)
		copy(c.Mem[0x410:], tc.b)
		run(t, c)
		if c.CC != tc.wantCC {
			t.Errorf("CLC %q %q: cc=%d, want %d", tc.a, tc.b, c.CC, tc.wantCC)
		}
	}
}

func TestNCOC(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "nc", Opds: []asm.Operand{asm.ML(0x500, 1, 0), asm.M(0x510, 0, 0)}},
		asm.Instr{Op: "oc", Opds: []asm.Operand{asm.ML(0x520, 1, 0), asm.M(0x510, 0, 0)}},
	)
	copy(c.Mem[0x500:], []byte{0xF0, 0x0F})
	copy(c.Mem[0x510:], []byte{0xAA, 0xAA})
	copy(c.Mem[0x520:], []byte{0x00, 0x00})
	run(t, c)
	if c.Mem[0x500] != 0xA0 || c.Mem[0x501] != 0x0A {
		t.Errorf("NC: % x", c.Mem[0x500:0x502])
	}
	if c.Mem[0x520] != 0xAA || c.Mem[0x521] != 0xAA {
		t.Errorf("OC: % x", c.Mem[0x520:0x522])
	}
}

func TestBXLELoop(t *testing.T) {
	// BXLE r1,r4: r1 += r4 (increment), compare with r5 (limit).
	c := assemble(t,
		asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(2), asm.R(1)}},
		asm.Instr{Op: "bxle", Opds: []asm.Operand{asm.R(1), asm.R(4), asm.M(0x100, 0, 0)}},
	)
	c.R[1], c.R[2] = 1, 0
	c.R[4], c.R[5] = 1, 5
	run(t, c)
	// Iterations: r2 accumulates r1 before each increment: 1+2+3+4+5=15.
	if c.R[2] != 15 {
		t.Errorf("BXLE sum = %d", c.R[2])
	}
}

func TestBXH(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "bxh", Opds: []asm.Operand{asm.R(1), asm.R(4), asm.M(0x108, 0, 0)}},
		asm.Instr{Op: "la", Opds: []asm.Operand{asm.R(9), asm.M(99, 0, 0)}},
	)
	c.R[1], c.R[4], c.R[5] = 10, 1, 5
	run(t, c)
	if c.R[9] == 99 {
		t.Error("BXH with high result did not branch")
	}
}

func TestShortFloat(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "le", Opds: []asm.Operand{asm.R(0), asm.M(0x600, 0, 0)}},
		asm.Instr{Op: "ae", Opds: []asm.Operand{asm.R(0), asm.M(0x604, 0, 0)}},
		asm.Instr{Op: "me", Opds: []asm.Operand{asm.R(0), asm.M(0x604, 0, 0)}},
		asm.Instr{Op: "se", Opds: []asm.Operand{asm.R(0), asm.M(0x604, 0, 0)}},
		asm.Instr{Op: "de", Opds: []asm.Operand{asm.R(0), asm.M(0x604, 0, 0)}},
		asm.Instr{Op: "ce", Opds: []asm.Operand{asm.R(0), asm.M(0x604, 0, 0)}},
		asm.Instr{Op: "ste", Opds: []asm.Operand{asm.R(0), asm.M(0x608, 0, 0)}},
	)
	put32 := func(addr uint32, f float32) {
		c.SetWord(addr, int32(math.Float32bits(f)))
	}
	put32(0x600, 3)
	put32(0x604, 2)
	run(t, c)
	// ((3+2)*2-2)/2 = 4.
	v, _ := c.Word(0x608)
	if got := math.Float32frombits(uint32(v)); got != 4 {
		t.Errorf("short float chain = %v", got)
	}
	if c.CC != 2 {
		t.Errorf("CE 4 vs 2: cc=%d", c.CC)
	}
}

func TestFloatRegisterChecks(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "ldr", Opds: []asm.Operand{asm.R(1), asm.R(2)}})
	if err := c.Run(10); err == nil {
		t.Error("LDR with an odd floating register did not fault")
	}
}

func TestFloatUnaries(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "lcdr", Opds: []asm.Operand{asm.R(2), asm.R(0)}},
		asm.Instr{Op: "lpdr", Opds: []asm.Operand{asm.R(4), asm.R(2)}},
		asm.Instr{Op: "lndr", Opds: []asm.Operand{asm.R(6), asm.R(4)}},
		asm.Instr{Op: "hdr", Opds: []asm.Operand{asm.R(0), asm.R(4)}},
		asm.Instr{Op: "ltdr", Opds: []asm.Operand{asm.R(2), asm.R(2)}},
	)
	c.F[0] = 10
	run(t, c)
	if c.F[2] != -10 || c.F[4] != 10 || c.F[6] != -10 || c.F[0] != 5 {
		t.Errorf("unaries: %v %v %v %v", c.F[2], c.F[4], c.F[6], c.F[0])
	}
	if c.CC != 1 {
		t.Errorf("LTDR(-10) cc=%d", c.CC)
	}
}

func TestDoubleLogicalShifts(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "sldl", Opds: []asm.Operand{asm.R(2), asm.I(8)}})
	c.R[2], c.R[3] = 0x00000001, 0x80000000
	run(t, c)
	if c.R[2] != 0x00000180 || c.R[3] != 0 {
		t.Errorf("SLDL: %#x:%#x", c.R[2], c.R[3])
	}
	c = assemble(t, asm.Instr{Op: "srdl", Opds: []asm.Operand{asm.R(2), asm.I(8)}})
	c.R[2], c.R[3] = 0x00000180, 0
	run(t, c)
	if c.R[2] != 0x1 || c.R[3] != 0x80000000 {
		t.Errorf("SRDL: %#x:%#x", c.R[2], c.R[3])
	}
}

func TestLAMasks24Bits(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "la", Opds: []asm.Operand{asm.R(1), asm.M(0xFFF, 0, 2)}})
	c.R[2] = 0xFFFFFFFF
	run(t, c)
	if c.R[1] != ((0xFFFFFFFF+0xFFF)&0x00FFFFFF)&0x00FFFFFF {
		t.Errorf("LA mask: %#x", c.R[1])
	}
}

func TestSPM(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "spm", Opds: []asm.Operand{asm.R(1), asm.R(0)}})
	c.R[1] = 2 << 28
	run(t, c)
	if c.CC != 2 {
		t.Errorf("SPM cc=%d", c.CC)
	}
}

func TestBAL(t *testing.T) {
	c := assemble(t, asm.Instr{Op: "bal", Opds: []asm.Operand{asm.R(7), asm.M(0x104, 0, 0)}})
	run(t, c)
	if c.R[7] != 0x104 {
		t.Errorf("BAL link %#x", c.R[7])
	}
}

func TestHalfwordArith(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "ah", Opds: []asm.Operand{asm.R(1), asm.M(0x700, 0, 0)}},
		asm.Instr{Op: "sh", Opds: []asm.Operand{asm.R(2), asm.M(0x700, 0, 0)}},
		asm.Instr{Op: "mh", Opds: []asm.Operand{asm.R(3), asm.M(0x700, 0, 0)}},
		asm.Instr{Op: "ch", Opds: []asm.Operand{asm.R(4), asm.M(0x700, 0, 0)}},
	)
	c.SetHalf(0x700, -3)
	c.R[1], c.R[2], c.R[3], c.R[4] = 10, 10, 10, u32(-3)
	run(t, c)
	if int32(c.R[1]) != 7 || int32(c.R[2]) != 13 || int32(c.R[3]) != -30 {
		t.Errorf("halfword arith: %d %d %d", int32(c.R[1]), int32(c.R[2]), int32(c.R[3]))
	}
	if c.CC != 0 {
		t.Errorf("CH equal cc=%d", c.CC)
	}
}

func TestUnsignedFullwordOps(t *testing.T) {
	c := assemble(t,
		asm.Instr{Op: "cl", Opds: []asm.Operand{asm.R(1), asm.M(0x700, 0, 0)}},
	)
	c.SetWord(0x700, 1)
	c.R[1] = 0xFFFFFFFF
	run(t, c)
	if c.CC != 2 {
		t.Errorf("CL unsigned: cc=%d", c.CC)
	}
	c = assemble(t,
		asm.Instr{Op: "al", Opds: []asm.Operand{asm.R(1), asm.M(0x700, 0, 0)}},
		asm.Instr{Op: "sl", Opds: []asm.Operand{asm.R(2), asm.M(0x700, 0, 0)}},
	)
	c.SetWord(0x700, 5)
	c.R[1], c.R[2] = 10, 3
	run(t, c)
	if c.R[1] != 15 || c.R[2] != 0xFFFFFFFE {
		t.Errorf("AL/SL: %#x %#x", c.R[1], c.R[2])
	}
}
