package sim

import (
	"math"

	"cogg/internal/s370"
)

// Run executes instructions from the current PC until the CPU halts,
// faults, or exceeds maxSteps.
func (c *CPU) Run(maxSteps int) error {
	for !c.Halted {
		if c.Steps >= maxSteps {
			return c.fault("step limit %d exceeded (runaway program?)", maxSteps)
		}
		c.Steps++
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if int(c.PC)+2 > len(c.Mem) {
		return c.fault("instruction fetch outside storage")
	}
	code := c.Mem[c.PC]
	info, ok := s370.Decode(code)
	if !ok {
		return c.fault("unknown opcode %#02x", code)
	}
	size := info.Format.Size()
	if int(c.PC)+size > len(c.Mem) {
		return c.fault("instruction %s extends outside storage", info.Name)
	}
	raw := c.Mem[c.PC : c.PC+uint32(size)]
	next := c.PC + uint32(size)
	c.branched = false
	defer func() {
		if !c.branched && !c.Halted {
			c.PC = next
		}
	}()

	switch info.Format {
	case s370.RR:
		return c.execRR(info, int(raw[1]>>4), int(raw[1]&0xF), next)
	case s370.RX:
		r1 := int(raw[1] >> 4)
		x2 := int(raw[1] & 0xF)
		b2 := int(raw[2] >> 4)
		d2 := uint32(raw[2]&0xF)<<8 | uint32(raw[3])
		addr := d2
		if x2 != 0 {
			addr += c.R[x2]
		}
		if b2 != 0 {
			addr += c.R[b2]
		}
		return c.execRX(info, r1, addr, next)
	case s370.RS:
		r1 := int(raw[1] >> 4)
		r3 := int(raw[1] & 0xF)
		b2 := int(raw[2] >> 4)
		d2 := uint32(raw[2]&0xF)<<8 | uint32(raw[3])
		addr := d2
		if !info.Shift && b2 != 0 {
			addr += c.R[b2]
		}
		if info.Shift {
			// Shift amount is the low six bits of the effective address.
			amount := d2
			if b2 != 0 {
				amount += c.R[b2]
			}
			return c.execShift(info, r1, int(amount&63))
		}
		return c.execRS(info, r1, r3, addr, next)
	case s370.SI:
		i2 := raw[1]
		b1 := int(raw[2] >> 4)
		d1 := uint32(raw[2]&0xF)<<8 | uint32(raw[3])
		addr := d1
		if b1 != 0 {
			addr += c.R[b1]
		}
		return c.execSI(info, addr, i2)
	case s370.SS:
		l := int(raw[1]) + 1
		b1 := int(raw[2] >> 4)
		d1 := uint32(raw[2]&0xF)<<8 | uint32(raw[3])
		b2 := int(raw[4] >> 4)
		d2 := uint32(raw[4]&0xF)<<8 | uint32(raw[5])
		a1, a2 := d1, d2
		if b1 != 0 {
			a1 += c.R[b1]
		}
		if b2 != 0 {
			a2 += c.R[b2]
		}
		return c.execSS(info, a1, a2, l)
	}
	return c.fault("unhandled format for %s", info.Name)
}

func (c *CPU) execRR(info s370.OpInfo, r1, r2 int, next uint32) error {
	switch info.Name {
	case "lr":
		c.R[r1] = c.R[r2]
	case "ltr":
		c.R[r1] = c.R[r2]
		c.signCC(int32(c.R[r1]))
	case "lcr":
		c.R[r1] = uint32(c.addCC(-int64(int32(c.R[r2]))))
	case "lpr":
		v := int64(int32(c.R[r2]))
		if v < 0 {
			v = -v
		}
		c.R[r1] = uint32(c.addCC(v))
	case "lnr":
		v := int64(int32(c.R[r2]))
		if v > 0 {
			v = -v
		}
		c.R[r1] = uint32(c.addCC(v))
	case "ar":
		c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) + int64(int32(c.R[r2]))))
	case "sr":
		c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) - int64(int32(c.R[r2]))))
	case "alr":
		v := uint64(c.R[r1]) + uint64(c.R[r2])
		c.R[r1] = uint32(v)
		c.logicalCC(uint32(v))
	case "slr":
		v := c.R[r1] - c.R[r2]
		c.R[r1] = v
		c.logicalCC(v)
	case "mr":
		e, err := c.pair(r1)
		if err != nil {
			return err
		}
		prod := int64(int32(c.R[e+1])) * int64(int32(c.R[r2]))
		c.R[e] = uint32(uint64(prod) >> 32)
		c.R[e+1] = uint32(prod)
	case "dr":
		e, err := c.pair(r1)
		if err != nil {
			return err
		}
		dividend := int64(uint64(c.R[e])<<32 | uint64(c.R[e+1]))
		divisor := int64(int32(c.R[r2]))
		if divisor == 0 {
			return c.fault("fixed point divide by zero")
		}
		c.R[e] = uint32(int32(dividend % divisor))
		c.R[e+1] = uint32(int32(dividend / divisor))
	case "cr":
		c.compare(int32(c.R[r1]), int32(c.R[r2]))
	case "clr":
		c.compareU(c.R[r1], c.R[r2])
	case "nr":
		c.R[r1] &= c.R[r2]
		c.logicalCC(c.R[r1])
	case "or":
		c.R[r1] |= c.R[r2]
		c.logicalCC(c.R[r1])
	case "xr":
		c.R[r1] ^= c.R[r2]
		c.logicalCC(c.R[r1])
	case "bcr":
		if r2 != 0 && c.branchTaken(r1) {
			c.jump(c.R[r2])
		}
	case "balr":
		c.R[r1] = next
		if r2 != 0 {
			c.jump(c.R[r2])
		}
	case "bctr":
		c.R[r1]--
		if r2 != 0 && c.R[r1] != 0 {
			c.jump(c.R[r2])
		}
	case "mvcl":
		return c.execMVCL(r1, r2)
	case "clcl":
		return c.fault("clcl is not implemented")
	case "spm":
		// Set program mask: condition code from bits 2-3 of r1.
		c.CC = uint8(c.R[r1] >> 28 & 3)
	case "ldr", "ler", "ldxr":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = c.F[f2]
	case "ltdr":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = c.F[f2]
		c.compareF(c.F[f1], 0)
	case "lcdr", "lcer":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = -c.F[f2]
		c.compareF(c.F[f1], 0)
	case "lpdr", "lper":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = math.Abs(c.F[f2])
		c.compareF(c.F[f1], 0)
	case "lndr":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = -math.Abs(c.F[f2])
		c.compareF(c.F[f1], 0)
	case "hdr", "her":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.F[f1] = c.F[f2] / 2
	case "adr", "aer", "axr":
		return c.floatRR(r1, r2, func(a, b float64) float64 { return a + b }, true)
	case "sdr", "ser", "sxr":
		return c.floatRR(r1, r2, func(a, b float64) float64 { return a - b }, true)
	case "mdr", "mer", "mxr":
		return c.floatRR(r1, r2, func(a, b float64) float64 { return a * b }, false)
	case "ddr", "der":
		if c.F[r2] == 0 {
			return c.fault("floating point divide by zero")
		}
		return c.floatRR(r1, r2, func(a, b float64) float64 { return a / b }, false)
	case "cdr", "cer":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		f2, err := c.freg(r2)
		if err != nil {
			return err
		}
		c.compareF(c.F[f1], c.F[f2])
	default:
		return c.fault("RR opcode %s is not implemented", info.Name)
	}
	return nil
}

func (c *CPU) floatRR(r1, r2 int, op func(a, b float64) float64, setCC bool) error {
	f1, err := c.freg(r1)
	if err != nil {
		return err
	}
	f2, err := c.freg(r2)
	if err != nil {
		return err
	}
	c.F[f1] = op(c.F[f1], c.F[f2])
	if setCC {
		c.compareF(c.F[f1], 0)
	}
	return nil
}

func (c *CPU) execMVCL(r1, r2 int) error {
	e1, err := c.pair(r1)
	if err != nil {
		return err
	}
	e2, err := c.pair(r2)
	if err != nil {
		return err
	}
	dst := c.R[e1]
	dstLen := c.R[e1+1] & 0x00FFFFFF
	src := c.R[e2]
	srcLen := c.R[e2+1] & 0x00FFFFFF
	pad := byte(c.R[e2+1] >> 24)
	for i := uint32(0); i < dstLen; i++ {
		var b byte
		if i < srcLen {
			b, err = c.Byte(src + i)
			if err != nil {
				return err
			}
		} else {
			b = pad
		}
		if err := c.SetByte(dst+i, b); err != nil {
			return err
		}
	}
	moved := dstLen
	if srcLen < moved {
		moved = srcLen
	}
	c.R[e1] = dst + dstLen
	c.R[e1+1] &= 0xFF000000
	c.R[e2] = src + moved
	c.R[e2+1] = c.R[e2+1]&0xFF000000 | (srcLen - moved)
	c.compareU(dstLen, srcLen)
	return nil
}
