// Package sim interprets the S/370 instruction subset emitted by the
// generated code generators, standing in for the Amdahl 470 the paper ran
// on. It models sixteen 32-bit general registers, four floating point
// registers, the condition code, and big-endian storage.
//
// Floating point values are held as IEEE doubles rather than
// hexadecimal-normalized S/370 floats; the code generation experiments
// depend only on operation shape, not on the float encoding.
package sim

import "fmt"

// CPU is one simulated processor with its storage.
type CPU struct {
	R   [16]uint32
	F   [8]float64 // floating registers 0,2,4,6
	CC  uint8
	PC  uint32
	Mem []byte

	// HaltAddr is the magic address that stops execution when branched
	// to; the runtime places it in r14 at entry so that `bcr 15,r14`
	// returns to the host.
	HaltAddr uint32

	Halted bool
	Steps  int

	branched bool // set by jump; Step does not advance the PC after a taken branch
}

// New allocates a CPU with memSize bytes of storage.
func New(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize), HaltAddr: 0x00DEAD00}
}

// Fault is an execution error with machine state context.
type Fault struct {
	PC  uint32
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("sim: fault at %#x: %s", f.PC, f.Msg) }

func (c *CPU) fault(format string, args ...any) error {
	return &Fault{PC: c.PC, Msg: fmt.Sprintf(format, args...)}
}

// Load copies bytes into storage at addr.
func (c *CPU) Load(addr int, data []byte) error {
	if addr < 0 || addr+len(data) > len(c.Mem) {
		return fmt.Errorf("sim: load of %d bytes at %#x outside storage", len(data), addr)
	}
	copy(c.Mem[addr:], data)
	return nil
}

// Word reads the fullword at addr.
func (c *CPU) Word(addr uint32) (int32, error) {
	if int(addr)+4 > len(c.Mem) {
		return 0, c.fault("fullword fetch at %#x outside storage", addr)
	}
	m := c.Mem[addr:]
	return int32(uint32(m[0])<<24 | uint32(m[1])<<16 | uint32(m[2])<<8 | uint32(m[3])), nil
}

// SetWord writes the fullword at addr.
func (c *CPU) SetWord(addr uint32, v int32) error {
	if int(addr)+4 > len(c.Mem) {
		return c.fault("fullword store at %#x outside storage", addr)
	}
	u := uint32(v)
	c.Mem[addr], c.Mem[addr+1], c.Mem[addr+2], c.Mem[addr+3] =
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	return nil
}

// Half reads the sign-extended halfword at addr.
func (c *CPU) Half(addr uint32) (int32, error) {
	if int(addr)+2 > len(c.Mem) {
		return 0, c.fault("halfword fetch at %#x outside storage", addr)
	}
	return int32(int16(uint16(c.Mem[addr])<<8 | uint16(c.Mem[addr+1]))), nil
}

// SetHalf writes the low halfword of v at addr.
func (c *CPU) SetHalf(addr uint32, v int32) error {
	if int(addr)+2 > len(c.Mem) {
		return c.fault("halfword store at %#x outside storage", addr)
	}
	c.Mem[addr], c.Mem[addr+1] = byte(uint32(v)>>8), byte(uint32(v))
	return nil
}

// Byte reads one byte.
func (c *CPU) Byte(addr uint32) (byte, error) {
	if int(addr) >= len(c.Mem) {
		return 0, c.fault("byte fetch at %#x outside storage", addr)
	}
	return c.Mem[addr], nil
}

// SetByte writes one byte.
func (c *CPU) SetByte(addr uint32, v byte) error {
	if int(addr) >= len(c.Mem) {
		return c.fault("byte store at %#x outside storage", addr)
	}
	c.Mem[addr] = v
	return nil
}

func (c *CPU) pair(r1 int) (int, error) {
	if r1%2 != 0 {
		return 0, c.fault("register r%d is not the even member of a pair", r1)
	}
	return r1, nil
}

// signCC sets the condition code from a signed result: 0 zero, 1
// negative, 2 positive.
func (c *CPU) signCC(v int32) {
	switch {
	case v == 0:
		c.CC = 0
	case v < 0:
		c.CC = 1
	default:
		c.CC = 2
	}
}

// addCC sets the condition code for an add/subtract, including overflow.
func (c *CPU) addCC(v int64) int32 {
	r := int32(v)
	if int64(r) != v {
		c.CC = 3
		return r
	}
	c.signCC(r)
	return r
}

func (c *CPU) compare(a, b int32) {
	switch {
	case a == b:
		c.CC = 0
	case a < b:
		c.CC = 1
	default:
		c.CC = 2
	}
}

func (c *CPU) compareU(a, b uint32) {
	switch {
	case a == b:
		c.CC = 0
	case a < b:
		c.CC = 1
	default:
		c.CC = 2
	}
}

func (c *CPU) compareF(a, b float64) {
	switch {
	case a == b:
		c.CC = 0
	case a < b:
		c.CC = 1
	default:
		c.CC = 2
	}
}

func (c *CPU) logicalCC(v uint32) {
	if v == 0 {
		c.CC = 0
	} else {
		c.CC = 1
	}
}

func (c *CPU) freg(n int) (int, error) {
	if n != 0 && n != 2 && n != 4 && n != 6 {
		return 0, c.fault("r%d is not a floating point register", n)
	}
	return n, nil
}

// branchTaken reports whether a BC mask selects the current condition code.
func (c *CPU) branchTaken(mask int) bool {
	return mask&(8>>c.CC) != 0
}

// jump transfers control, halting on the magic address.
func (c *CPU) jump(addr uint32) {
	c.branched = true
	if addr == c.HaltAddr {
		c.Halted = true
		return
	}
	c.PC = addr
}
