package sim

import (
	"math"

	"cogg/internal/s370"
)

func (c *CPU) execRX(info s370.OpInfo, r1 int, addr, next uint32) error {
	switch info.Name {
	case "l":
		v, err := c.Word(addr)
		if err != nil {
			return err
		}
		c.R[r1] = uint32(v)
	case "lh":
		v, err := c.Half(addr)
		if err != nil {
			return err
		}
		c.R[r1] = uint32(v)
	case "la":
		c.R[r1] = addr & 0x00FFFFFF
	case "st":
		return c.SetWord(addr, int32(c.R[r1]))
	case "sth":
		return c.SetHalf(addr, int32(c.R[r1]))
	case "stc":
		return c.SetByte(addr, byte(c.R[r1]))
	case "ic":
		b, err := c.Byte(addr)
		if err != nil {
			return err
		}
		c.R[r1] = c.R[r1]&0xFFFFFF00 | uint32(b)
	case "a", "s", "c", "n", "o", "x", "m", "d", "al", "sl", "cl":
		v, err := c.Word(addr)
		if err != nil {
			return err
		}
		return c.fullwordOp(info.Name, r1, v)
	case "ah", "sh", "ch", "mh":
		v, err := c.Half(addr)
		if err != nil {
			return err
		}
		switch info.Name {
		case "ah":
			c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) + int64(v)))
		case "sh":
			c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) - int64(v)))
		case "ch":
			c.compare(int32(c.R[r1]), v)
		case "mh":
			c.R[r1] = uint32(int32(c.R[r1]) * v)
		}
	case "bc":
		if c.branchTaken(r1) {
			c.jump(addr)
		}
	case "bal":
		c.R[r1] = next
		c.jump(addr)
	case "bct":
		c.R[r1]--
		if c.R[r1] != 0 {
			c.jump(addr)
		}
	case "ex", "cvb", "cvd":
		return c.fault("%s is not implemented", info.Name)
	case "ld", "le":
		v, err := c.floatAt(addr, info.Name == "le")
		if err != nil {
			return err
		}
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		c.F[f1] = v
	case "std", "ste":
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		return c.setFloatAt(addr, c.F[f1], info.Name == "ste")
	case "ad", "sd", "md", "dd", "cd", "ae", "se", "me", "de", "ce":
		short := info.Name[len(info.Name)-1] == 'e'
		v, err := c.floatAt(addr, short)
		if err != nil {
			return err
		}
		f1, err := c.freg(r1)
		if err != nil {
			return err
		}
		switch info.Name[0] {
		case 'a':
			c.F[f1] += v
			c.compareF(c.F[f1], 0)
		case 's':
			c.F[f1] -= v
			c.compareF(c.F[f1], 0)
		case 'm':
			c.F[f1] *= v
		case 'd':
			if v == 0 {
				return c.fault("floating point divide by zero")
			}
			c.F[f1] /= v
		case 'c':
			c.compareF(c.F[f1], v)
		}
	default:
		return c.fault("RX opcode %s is not implemented", info.Name)
	}
	return nil
}

// fullwordOp applies a fullword second operand to r1.
func (c *CPU) fullwordOp(name string, r1 int, v int32) error {
	switch name {
	case "a":
		c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) + int64(v)))
	case "s":
		c.R[r1] = uint32(c.addCC(int64(int32(c.R[r1])) - int64(v)))
	case "al":
		sum := uint64(c.R[r1]) + uint64(uint32(v))
		c.R[r1] = uint32(sum)
		c.logicalCC(uint32(sum))
	case "sl":
		diff := c.R[r1] - uint32(v)
		c.R[r1] = diff
		c.logicalCC(diff)
	case "c":
		c.compare(int32(c.R[r1]), v)
	case "cl":
		c.compareU(c.R[r1], uint32(v))
	case "n":
		c.R[r1] &= uint32(v)
		c.logicalCC(c.R[r1])
	case "o":
		c.R[r1] |= uint32(v)
		c.logicalCC(c.R[r1])
	case "x":
		c.R[r1] ^= uint32(v)
		c.logicalCC(c.R[r1])
	case "m":
		e, err := c.pair(r1)
		if err != nil {
			return err
		}
		prod := int64(int32(c.R[e+1])) * int64(v)
		c.R[e] = uint32(uint64(prod) >> 32)
		c.R[e+1] = uint32(prod)
	case "d":
		e, err := c.pair(r1)
		if err != nil {
			return err
		}
		dividend := int64(uint64(c.R[e])<<32 | uint64(c.R[e+1]))
		if v == 0 {
			return c.fault("fixed point divide by zero")
		}
		c.R[e] = uint32(int32(dividend % int64(v)))
		c.R[e+1] = uint32(int32(dividend / int64(v)))
	}
	return nil
}

func (c *CPU) floatAt(addr uint32, short bool) (float64, error) {
	if short {
		v, err := c.Word(addr)
		if err != nil {
			return 0, err
		}
		return float64(math.Float32frombits(uint32(v))), nil
	}
	hi, err := c.Word(addr)
	if err != nil {
		return 0, err
	}
	lo, err := c.Word(addr + 4)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(uint32(hi))<<32 | uint64(uint32(lo))), nil
}

func (c *CPU) setFloatAt(addr uint32, v float64, short bool) error {
	if short {
		return c.SetWord(addr, int32(math.Float32bits(float32(v))))
	}
	bits := math.Float64bits(v)
	if err := c.SetWord(addr, int32(uint32(bits>>32))); err != nil {
		return err
	}
	return c.SetWord(addr+4, int32(uint32(bits)))
}

func (c *CPU) execRS(info s370.OpInfo, r1, r3 int, addr, next uint32) error {
	switch info.Name {
	case "lm":
		for r := r1; ; r = (r + 1) & 15 {
			v, err := c.Word(addr)
			if err != nil {
				return err
			}
			c.R[r] = uint32(v)
			addr += 4
			if r == r3 {
				break
			}
		}
	case "stm":
		for r := r1; ; r = (r + 1) & 15 {
			if err := c.SetWord(addr, int32(c.R[r])); err != nil {
				return err
			}
			addr += 4
			if r == r3 {
				break
			}
		}
	case "bxh":
		c.R[r1] += c.R[r3]
		cmp := c.R[r3|1]
		if int32(c.R[r1]) > int32(cmp) {
			c.jump(addr)
		}
	case "bxle":
		c.R[r1] += c.R[r3]
		cmp := c.R[r3|1]
		if int32(c.R[r1]) <= int32(cmp) {
			c.jump(addr)
		}
	default:
		return c.fault("RS opcode %s is not implemented", info.Name)
	}
	return nil
}

func (c *CPU) execShift(info s370.OpInfo, r1, amount int) error {
	double := len(info.Name) == 4 // sldl, srdl, slda, srda
	arith := info.Name[len(info.Name)-1] == 'a'
	left := info.Name[1] == 'l'
	if !double {
		v := c.R[r1]
		switch {
		case left && arith:
			r := int64(int32(v)) << amount
			c.R[r1] = uint32(v&0x80000000) | uint32(r)&0x7FFFFFFF
			c.signCC(int32(c.R[r1]))
		case left:
			c.R[r1] = v << amount
		case arith:
			c.R[r1] = uint32(int32(v) >> amount)
			c.signCC(int32(c.R[r1]))
		default:
			if amount >= 32 {
				c.R[r1] = 0
			} else {
				c.R[r1] = v >> amount
			}
		}
		return nil
	}
	e, err := c.pair(r1)
	if err != nil {
		return err
	}
	v := uint64(c.R[e])<<32 | uint64(c.R[e+1])
	switch {
	case left && arith:
		r := v << amount
		r = v&0x8000000000000000 | r&0x7FFFFFFFFFFFFFFF
		c.R[e], c.R[e+1] = uint32(r>>32), uint32(r)
		c.signCC64(int64(r))
	case left:
		r := v << amount
		c.R[e], c.R[e+1] = uint32(r>>32), uint32(r)
	case arith:
		r := uint64(int64(v) >> amount)
		c.R[e], c.R[e+1] = uint32(r>>32), uint32(r)
		c.signCC64(int64(r))
	default:
		var r uint64
		if amount < 64 {
			r = v >> amount
		}
		c.R[e], c.R[e+1] = uint32(r>>32), uint32(r)
	}
	return nil
}

func (c *CPU) signCC64(v int64) {
	switch {
	case v == 0:
		c.CC = 0
	case v < 0:
		c.CC = 1
	default:
		c.CC = 2
	}
}

func (c *CPU) execSI(info s370.OpInfo, addr uint32, i2 byte) error {
	switch info.Name {
	case "mvi":
		return c.SetByte(addr, i2)
	case "cli":
		b, err := c.Byte(addr)
		if err != nil {
			return err
		}
		c.compareU(uint32(b), uint32(i2))
	case "ni", "oi", "xi":
		b, err := c.Byte(addr)
		if err != nil {
			return err
		}
		switch info.Name {
		case "ni":
			b &= i2
		case "oi":
			b |= i2
		case "xi":
			b ^= i2
		}
		if err := c.SetByte(addr, b); err != nil {
			return err
		}
		c.logicalCC(uint32(b))
	case "tm":
		b, err := c.Byte(addr)
		if err != nil {
			return err
		}
		sel := b & i2
		switch {
		case sel == 0:
			c.CC = 0 // all selected bits zero
		case sel == i2:
			c.CC = 3 // all selected bits one
		default:
			c.CC = 1 // mixed
		}
	default:
		return c.fault("SI opcode %s is not implemented", info.Name)
	}
	return nil
}

func (c *CPU) execSS(info s370.OpInfo, a1, a2 uint32, l int) error {
	switch info.Name {
	case "mvc":
		for i := 0; i < l; i++ {
			b, err := c.Byte(a2 + uint32(i))
			if err != nil {
				return err
			}
			if err := c.SetByte(a1+uint32(i), b); err != nil {
				return err
			}
		}
	case "clc":
		for i := 0; i < l; i++ {
			b1, err := c.Byte(a1 + uint32(i))
			if err != nil {
				return err
			}
			b2, err := c.Byte(a2 + uint32(i))
			if err != nil {
				return err
			}
			if b1 != b2 {
				c.compareU(uint32(b1), uint32(b2))
				return nil
			}
		}
		c.CC = 0
	case "nc", "oc", "xc":
		any := uint32(0)
		for i := 0; i < l; i++ {
			b1, err := c.Byte(a1 + uint32(i))
			if err != nil {
				return err
			}
			b2, err := c.Byte(a2 + uint32(i))
			if err != nil {
				return err
			}
			switch info.Name {
			case "nc":
				b1 &= b2
			case "oc":
				b1 |= b2
			case "xc":
				b1 ^= b2
			}
			any |= uint32(b1)
			if err := c.SetByte(a1+uint32(i), b1); err != nil {
				return err
			}
		}
		c.logicalCC(any)
	default:
		return c.fault("SS opcode %s is not implemented", info.Name)
	}
	return nil
}
