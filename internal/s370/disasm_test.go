package s370

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cogg/internal/asm"
)

// randomInstr builds a random encodable instruction for a given opcode.
func randomInstr(r *rand.Rand, name string, info OpInfo) asm.Instr {
	reg := func() asm.Operand { return asm.R(r.Intn(16)) }
	mem := func() asm.Operand { return asm.M(int64(r.Intn(4096)), r.Intn(16), r.Intn(16)) }
	memNoIdx := func() asm.Operand { return asm.M(int64(r.Intn(4096)), 0, r.Intn(16)) }
	in := asm.Instr{Op: name}
	switch info.Format {
	case RR:
		first := reg()
		if info.Mask {
			first = asm.I(int64(r.Intn(16)))
		}
		in.Opds = []asm.Operand{first, reg()}
	case RX:
		first := reg()
		if info.Mask {
			first = asm.I(int64(r.Intn(16)))
		}
		in.Opds = []asm.Operand{first, mem()}
	case RS:
		if info.Shift {
			if r.Intn(2) == 0 {
				in.Opds = []asm.Operand{reg(), asm.I(int64(r.Intn(64)))}
			} else {
				in.Opds = []asm.Operand{reg(), asm.M(int64(r.Intn(4096)), 0, 1+r.Intn(15))}
			}
		} else {
			in.Opds = []asm.Operand{reg(), reg(), memNoIdx()}
		}
	case SI:
		in.Opds = []asm.Operand{memNoIdx(), asm.I(int64(r.Intn(256)))}
	case SS:
		in.Opds = []asm.Operand{asm.ML(int64(r.Intn(4096)), int64(r.Intn(256)), r.Intn(16)), memNoIdx()}
	}
	return in
}

// TestQuickEncodeDisassembleRoundTrip: encode → disassemble → encode
// yields the same bytes for every opcode and random operands.
func TestQuickEncodeDisassembleRoundTrip(t *testing.T) {
	m := NewMachine(0x8000)
	names := make([]string, 0, len(Ops))
	for name := range Ops {
		names = append(names, name)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 16; trial++ {
			name := names[r.Intn(len(names))]
			info, _ := Lookup(name)
			in := randomInstr(r, name, info)
			b1, err := m.Encode(nil, &in)
			if err != nil {
				t.Logf("encode %s %v: %v", name, in.Opds, err)
				return false
			}
			back, size, err := Disassemble(b1)
			if err != nil || size != len(b1) {
				t.Logf("disassemble %s: %v", name, err)
				return false
			}
			if back.Op != name {
				t.Logf("%s decoded as %s", name, back.Op)
				return false
			}
			b2, err := m.Encode(nil, &back)
			if err != nil {
				t.Logf("re-encode %s %v: %v", name, back.Opds, err)
				return false
			}
			if !bytes.Equal(b1, b2) {
				t.Logf("%s: % X != % X", name, b1, b2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleErrors(t *testing.T) {
	if _, _, err := Disassemble(nil); err == nil {
		t.Error("empty buffer disassembled")
	}
	if _, _, err := Disassemble([]byte{0xFF, 0x00}); err == nil {
		t.Error("unknown opcode disassembled")
	}
	if _, _, err := Disassemble([]byte{0x58, 0x10}); err == nil {
		t.Error("truncated RX disassembled")
	}
}

func TestDisassembleAll(t *testing.T) {
	m := NewMachine(0x8000)
	code := []byte{
		0x58, 0x10, 0xD0, 0x64, // l r1,100(r13)
		0x1A, 0x12, // ar r1,r2
		0xFF,       // junk byte
		0x07, 0xFE, // bcr 15,r14
	}
	text := DisassembleAll(m, code, 0x1000)
	for _, want := range []string{"l     r1,100(r13)", "ar    r1,r2", ".byte 0xff", "bcr"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing lacks %q:\n%s", want, text)
		}
	}
}
