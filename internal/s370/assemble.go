package s370

import (
	"fmt"
	"strconv"
	"strings"

	"cogg/internal/asm"
)

// Assemble parses assembly text in the syntax the listings print — one
// instruction per line, lower-case mnemonics, operands like r1, 100,
// 100(r13), 100(r3,r13), or 8(7,r13) for SS length forms — and returns
// the instructions. Comments start with '*' or follow ';'.
func Assemble(src string) ([]asm.Instr, error) {
	var out []asm.Instr
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		in, err := AssembleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// AssembleLine parses a single instruction.
func AssembleLine(line string) (asm.Instr, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return asm.Instr{}, fmt.Errorf("empty instruction")
	}
	op := strings.ToLower(fields[0])
	info, ok := Lookup(op)
	if !ok {
		return asm.Instr{}, fmt.Errorf("unknown mnemonic %q", op)
	}
	in := asm.Instr{Op: op}
	if len(fields) > 1 {
		operands, err := splitOperands(strings.Join(fields[1:], ""))
		if err != nil {
			return in, err
		}
		for i, text := range operands {
			o, err := parseOperand(info, i, text)
			if err != nil {
				return in, fmt.Errorf("%s operand %d: %w", op, i+1, err)
			}
			in.Opds = append(in.Opds, o)
		}
	}
	// Validate by encoding once.
	m := Machine{}
	if _, err := m.encodePlain(&in); err != nil {
		return in, err
	}
	return in, nil
}

// AssembleTo encodes assembly text directly to bytes.
func AssembleTo(src string) ([]byte, error) {
	ins, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	m := Machine{}
	var out []byte
	for i := range ins {
		b, err := m.encodePlain(&ins[i])
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// splitOperands splits on commas outside parentheses.
func splitOperands(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

func parseOperand(info OpInfo, i int, text string) (asm.Operand, error) {
	if text == "" {
		return asm.Operand{}, fmt.Errorf("empty operand")
	}
	// disp(...) forms.
	if open := strings.IndexByte(text, '('); open >= 0 {
		if !strings.HasSuffix(text, ")") {
			return asm.Operand{}, fmt.Errorf("malformed storage operand %q", text)
		}
		disp, err := parseNum(text[:open])
		if err != nil {
			return asm.Operand{}, err
		}
		inner := strings.Split(text[open+1:len(text)-1], ",")
		switch len(inner) {
		case 1:
			base, err := parseReg(inner[0])
			if err != nil {
				return asm.Operand{}, err
			}
			return asm.M(disp, 0, base), nil
		case 2:
			// d(x,b) or, for SS first operands, d(l,b).
			base, err := parseReg(inner[1])
			if err != nil {
				return asm.Operand{}, err
			}
			if info.Format == SS && i == 0 {
				length, err := parseNum(inner[0])
				if err != nil {
					return asm.Operand{}, err
				}
				return asm.ML(disp, length, base), nil
			}
			index, err := parseReg(inner[0])
			if err != nil {
				return asm.Operand{}, err
			}
			return asm.M(disp, index, base), nil
		}
		return asm.Operand{}, fmt.Errorf("too many address elements in %q", text)
	}
	// Bare register.
	if text[0] == 'r' || text[0] == 'R' {
		n, err := parseReg(text)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.R(n), nil
	}
	// Bare number: a mask, an immediate, a shift count — or, in a
	// storage position, a displacement with no base.
	v, err := parseNum(text)
	if err != nil {
		return asm.Operand{}, err
	}
	if storagePosition(info, i) {
		return asm.M(v, 0, 0), nil
	}
	return asm.I(v), nil
}

// storagePosition reports whether operand i of the format is a storage
// reference (so a bare number is a displacement, not an immediate).
func storagePosition(info OpInfo, i int) bool {
	switch info.Format {
	case RX:
		return i == 1
	case RS:
		return !info.Shift && i == 2
	case SI:
		return i == 0
	case SS:
		return true
	}
	return false
}

func parseReg(s string) (int, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return n, nil
	}
	// A bare number denotes a register in register positions
	// (stack_base-style constants).
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
