package s370

import (
	"bytes"
	"strings"
	"testing"

	"cogg/internal/asm"
)

func enc(t *testing.T, in asm.Instr) []byte {
	t.Helper()
	m := NewMachine(0x8000)
	b, err := m.Encode(nil, &in)
	if err != nil {
		t.Fatalf("Encode(%s): %v", in.Op, err)
	}
	return b
}

func TestEncodeGolden(t *testing.T) {
	cases := []struct {
		in   asm.Instr
		want []byte
	}{
		{asm.Instr{Op: "lr", Opds: []asm.Operand{asm.R(1), asm.R(2)}},
			[]byte{0x18, 0x12}},
		{asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(7), asm.R(9)}},
			[]byte{0x1A, 0x79}},
		{asm.Instr{Op: "bcr", Opds: []asm.Operand{asm.I(15), asm.R(14)}},
			[]byte{0x07, 0xFE}},
		{asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(100, 3, 13)}},
			[]byte{0x58, 0x13, 0xD0, 0x64}},
		{asm.Instr{Op: "st", Opds: []asm.Operand{asm.R(2), asm.M(4095, 0, 12)}},
			[]byte{0x50, 0x20, 0xCF, 0xFF}},
		{asm.Instr{Op: "bc", Opds: []asm.Operand{asm.I(8), asm.M(0x123, 0, 11)}},
			[]byte{0x47, 0x80, 0xB1, 0x23}},
		{asm.Instr{Op: "sla", Opds: []asm.Operand{asm.R(1), asm.I(2)}},
			[]byte{0x8B, 0x10, 0x00, 0x02}},
		{asm.Instr{Op: "srda", Opds: []asm.Operand{asm.R(4), asm.I(32)}},
			[]byte{0x8E, 0x40, 0x00, 0x20}},
		{asm.Instr{Op: "sla", Opds: []asm.Operand{asm.R(1), asm.M(0, 0, 5)}},
			[]byte{0x8B, 0x10, 0x50, 0x00}}, // count in r5
		{asm.Instr{Op: "stm", Opds: []asm.Operand{asm.R(14), asm.R(12), asm.M(0, 0, 13)}},
			[]byte{0x90, 0xEC, 0xD0, 0x00}},
		{asm.Instr{Op: "mvi", Opds: []asm.Operand{asm.M(10, 0, 13), asm.I(1)}},
			[]byte{0x92, 0x01, 0xD0, 0x0A}},
		{asm.Instr{Op: "tm", Opds: []asm.Operand{asm.M(10, 0, 13), asm.I(0x80)}},
			[]byte{0x91, 0x80, 0xD0, 0x0A}},
		{asm.Instr{Op: "mvc", Opds: []asm.Operand{asm.ML(8, 7, 13), asm.M(16, 0, 13)}},
			[]byte{0xD2, 0x07, 0xD0, 0x08, 0xD0, 0x10}},
		{asm.Instr{Op: "mvcl", Opds: []asm.Operand{asm.R(2), asm.R(4)}},
			[]byte{0x0E, 0x24}},
		// A constant in a register position (stack_base = 13).
		{asm.Instr{Op: "l", Opds: []asm.Operand{asm.I(13), asm.M(64, 0, 13)}},
			[]byte{0x58, 0xD0, 0xD0, 0x40}},
	}
	for _, c := range cases {
		if got := enc(t, c.in); !bytes.Equal(got, c.want) {
			t.Errorf("%s: got % X, want % X", c.in.Op, got, c.want)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	m := NewMachine(0x8000)
	bad := []asm.Instr{
		{Op: "nosuch", Opds: []asm.Operand{asm.R(1)}},
		{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(4096, 0, 13)}}, // disp too big
		{Op: "l", Opds: []asm.Operand{asm.R(1)}},                     // missing operand
		{Op: "lr", Opds: []asm.Operand{asm.R(1), asm.M(0, 0, 2)}},    // wrong kind
		{Op: "sla", Opds: []asm.Operand{asm.R(1), asm.I(-1)}},        // bad shift
		{Op: "mvi", Opds: []asm.Operand{asm.M(0, 0, 13), asm.I(256)}},
		{Op: "mvc", Opds: []asm.Operand{asm.ML(0, 256, 13), asm.M(0, 0, 13)}},
		{Op: "mvc", Opds: []asm.Operand{asm.M(0, 0, 13), asm.M(0, 0, 13)}},     // missing length form
		{Op: "lm", Opds: []asm.Operand{asm.R(14), asm.R(12), asm.M(0, 3, 13)}}, // indexed RS
	}
	for _, in := range bad {
		if _, err := m.Encode(nil, &in); err == nil {
			t.Errorf("%s %v: encode succeeded, want error", in.Op, in.Opds)
		}
	}
}

func TestInstructionSizes(t *testing.T) {
	m := NewMachine(0x8000)
	cases := map[string]int{"lr": 2, "l": 4, "stm": 4, "mvi": 4, "mvc": 6, "sla": 4}
	for op, want := range cases {
		in := asm.Instr{Op: op}
		got, err := m.SizeOf(&in)
		if err != nil || got != want {
			t.Errorf("SizeOf(%s) = %d, %v; want %d", op, got, err, want)
		}
	}
}

func TestPseudoSizesAndEncoding(t *testing.T) {
	m := NewMachine(0x8000)
	p := asm.NewProgram("T")
	p.Origin = 0x1000
	p.PoolOrigin = 0x8800
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 8, Label: 1, Scratch: 3})
	_ = p.DefineLabel(1, 1)

	short := &p.Instrs[0]
	short.Addr = 0x1000
	if n, _ := m.SizeOf(short); n != 4 {
		t.Errorf("short branch size %d", n)
	}
	p.CodeSize = 4
	b, err := m.Encode(p, short)
	if err != nil {
		t.Fatal(err)
	}
	// BC 8, disp(0, r11) with disp = 4 (label after instruction 0).
	if !bytes.Equal(b, []byte{0x47, 0x80, 0xF0, 0x04}) {
		t.Errorf("short branch encoding % X", b)
	}

	short.Long = true
	short.PoolIx = p.AddPoolLabel(1)
	if n, _ := m.SizeOf(short); n != 6 {
		t.Errorf("long branch size %d", n)
	}
	b, err = m.Encode(p, short)
	if err != nil {
		t.Fatal(err)
	}
	// L r3, pool(r12); BCR 8, r3 — pool slot 0 at 0x8800 - 0x8000 = 0x800.
	want := []byte{0x58, 0x30, 0xC8, 0x00, 0x07, 0x83}
	if !bytes.Equal(b, want) {
		t.Errorf("long branch encoding % X, want % X", b, want)
	}
}

func TestAddrConstEncoding(t *testing.T) {
	m := NewMachine(0x8000)
	p := asm.NewProgram("T")
	p.Origin = 0x1000
	p.Append(asm.Instr{Op: "lr", Opds: []asm.Operand{asm.R(1), asm.R(1)}})
	p.Append(asm.Instr{Pseudo: asm.AddrConst, Label: 5})
	_ = p.DefineLabel(5, 0)
	p.Instrs[0].Addr = 0x1000
	p.Instrs[1].Addr = 0x1002
	b, err := m.Encode(p, &p.Instrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x00, 0x00, 0x10, 0x00}) {
		t.Errorf("address constant % X", b)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for name := range Ops {
		info, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%s) failed", name)
		}
		back, ok := Decode(info.Code)
		if !ok {
			t.Errorf("Decode(%#x) failed for %s", info.Code, name)
			continue
		}
		if back.Name != name {
			t.Errorf("Decode(%#x) = %s, want %s", info.Code, back.Name, name)
		}
	}
}

func TestFormat(t *testing.T) {
	m := NewMachine(0x8000)
	cases := []struct {
		in   asm.Instr
		want string
	}{
		{asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(100, 3, 13)}}, "l     r1,100(r3,r13)"},
		{asm.Instr{Op: "ar", Opds: []asm.Operand{asm.R(1), asm.R(2)}}, "ar    r1,r2"},
		{asm.Instr{Op: "mvc", Opds: []asm.Operand{asm.ML(0, 7, 1), asm.M(0, 0, 2)}}, "mvc   0(7,r1),0(r2)"},
		{asm.Instr{Pseudo: asm.Branch, Cond: 8, Label: 4}, "bc    8,L4"},
		{asm.Instr{Pseudo: asm.AddrConst, Label: 2}, "dc    a(L2)"},
	}
	for _, c := range cases {
		if got := strings.TrimRight(m.Format(&c.in), " "); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func TestShortBranchReach(t *testing.T) {
	m := NewMachine(0x8000)
	p := asm.NewProgram("T")
	p.Origin = 0x1000
	if !m.ShortBranchReach(p, 0x1000, 0x1FFF) {
		t.Error("target at origin+0xFFF must be reachable")
	}
	if m.ShortBranchReach(p, 0x1000, 0x2000) {
		t.Error("target at origin+0x1000 must not be reachable")
	}
	if m.ShortBranchReach(p, 0x1000, 0x0FFF) {
		t.Error("target below origin must not be reachable")
	}
}
