package s370

import (
	"fmt"
	"strings"

	"cogg/internal/asm"
)

// Disassemble decodes the instruction at the head of buf into the same
// operand shapes the encoder accepts, returning the instruction and its
// byte length. Pseudo instructions cannot be recovered (a long branch
// disassembles as its L/BCR pair).
func Disassemble(buf []byte) (asm.Instr, int, error) {
	if len(buf) < 2 {
		return asm.Instr{}, 0, fmt.Errorf("s370: short instruction (%d bytes)", len(buf))
	}
	info, ok := Decode(buf[0])
	if !ok {
		return asm.Instr{}, 0, fmt.Errorf("s370: unknown opcode %#02x", buf[0])
	}
	size := info.Format.Size()
	if len(buf) < size {
		return asm.Instr{}, 0, fmt.Errorf("s370: truncated %s (%d of %d bytes)", info.Name, len(buf), size)
	}
	in := asm.Instr{Op: info.Name}
	switch info.Format {
	case RR:
		r1, r2 := int(buf[1]>>4), int(buf[1]&0xF)
		if info.Mask {
			in.Opds = []asm.Operand{asm.I(int64(r1)), asm.R(r2)}
		} else {
			in.Opds = []asm.Operand{asm.R(r1), asm.R(r2)}
		}
	case RX:
		r1 := int(buf[1] >> 4)
		x2 := int(buf[1] & 0xF)
		b2 := int(buf[2] >> 4)
		d2 := int64(buf[2]&0xF)<<8 | int64(buf[3])
		first := asm.R(r1)
		if info.Mask {
			first = asm.I(int64(r1))
		}
		in.Opds = []asm.Operand{first, asm.M(d2, x2, b2)}
	case RS:
		r1 := int(buf[1] >> 4)
		r3 := int(buf[1] & 0xF)
		b2 := int(buf[2] >> 4)
		d2 := int64(buf[2]&0xF)<<8 | int64(buf[3])
		if info.Shift {
			if b2 == 0 {
				in.Opds = []asm.Operand{asm.R(r1), asm.I(d2)}
			} else {
				in.Opds = []asm.Operand{asm.R(r1), asm.M(d2, 0, b2)}
			}
		} else {
			in.Opds = []asm.Operand{asm.R(r1), asm.R(r3), asm.M(d2, 0, b2)}
		}
	case SI:
		i2 := int64(buf[1])
		b1 := int(buf[2] >> 4)
		d1 := int64(buf[2]&0xF)<<8 | int64(buf[3])
		in.Opds = []asm.Operand{asm.M(d1, 0, b1), asm.I(i2)}
	case SS:
		l := int64(buf[1])
		b1 := int(buf[2] >> 4)
		d1 := int64(buf[2]&0xF)<<8 | int64(buf[3])
		b2 := int(buf[4] >> 4)
		d2 := int64(buf[4]&0xF)<<8 | int64(buf[5])
		in.Opds = []asm.Operand{asm.ML(d1, l, b1), asm.M(d2, 0, b2)}
	}
	return in, size, nil
}

// DisassembleAll renders a storage span as an assembly listing, one
// instruction per line with its address, for simulator debugging.
func DisassembleAll(m *Machine, buf []byte, origin int) string {
	var b strings.Builder
	pos := 0
	for pos < len(buf) {
		in, size, err := Disassemble(buf[pos:])
		if err != nil {
			fmt.Fprintf(&b, "%08x  .byte %#02x\n", origin+pos, buf[pos])
			pos++
			continue
		}
		fmt.Fprintf(&b, "%08x  %s\n", origin+pos, m.Format(&in))
		pos += size
	}
	return b.String()
}
