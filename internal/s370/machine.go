package s370

import (
	"fmt"
	"strings"

	"cogg/internal/asm"
)

// Machine implements asm.Machine for the S/370 subset. All memory
// references go through base registers with 12-bit displacements; the
// machine is configured with the conventional register assignments of
// the generated code generator's runtime.
type Machine struct {
	// CodeBase is the register holding the code origin at run time; short
	// branches are BC instructions based on it (addressability reaches
	// 4096 bytes — one page, paper section 4.2).
	CodeBase int
	// PoolBase is the register addressing the runtime constant area,
	// which contains the literal pool of branch-target addresses.
	PoolBase int
	// PoolBaseAddr is the run-time value of PoolBase.
	PoolBaseAddr int
}

// NewMachine returns the conventional configuration: r15 addresses code,
// r12 addresses the constant area loaded at poolBaseAddr.
func NewMachine(poolBaseAddr int) *Machine {
	return &Machine{CodeBase: 15, PoolBase: 12, PoolBaseAddr: poolBaseAddr}
}

var _ asm.Machine = (*Machine)(nil)

// Name implements asm.Machine.
func (m *Machine) Name() string { return "s370" }

// SizeOf implements asm.Machine.
func (m *Machine) SizeOf(in *asm.Instr) (int, error) {
	switch in.Pseudo {
	case asm.LabelMark:
		return 0, nil
	case asm.AddrConst:
		return 4, nil
	case asm.Branch:
		if in.Long {
			return 6, nil // L scratch,pool(poolBase) + BCR cond,scratch
		}
		return 4, nil // BC cond,disp(0,codeBase)
	case asm.CaseLoad:
		return 10, nil // L + L indexed + BCR
	}
	info, ok := Lookup(in.Op)
	if !ok {
		return 0, fmt.Errorf("s370: unknown opcode %q", in.Op)
	}
	return info.Format.Size(), nil
}

// ShortBranchReach implements asm.Machine: the short form addresses
// targets within 4095 bytes of the code origin.
func (m *Machine) ShortBranchReach(p *asm.Program, branchAddr, target int) bool {
	d := target - p.Origin
	return d >= 0 && d <= 4095
}

// Encode implements asm.Machine.
func (m *Machine) Encode(p *asm.Program, in *asm.Instr) ([]byte, error) {
	switch in.Pseudo {
	case asm.LabelMark:
		return nil, nil
	case asm.AddrConst:
		addr, err := p.LabelAddr(in.Label)
		if err != nil {
			return nil, err
		}
		return []byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}, nil
	case asm.Branch:
		return m.encodeBranch(p, in)
	case asm.CaseLoad:
		return m.encodeCaseLoad(p, in)
	}
	return m.encodePlain(in)
}

func (m *Machine) encodeBranch(p *asm.Program, in *asm.Instr) ([]byte, error) {
	target, err := p.LabelAddr(in.Label)
	if err != nil {
		return nil, err
	}
	if !in.Long {
		d := target - p.Origin
		if d < 0 || d > 4095 {
			return nil, fmt.Errorf("s370: short branch to %#x out of range of origin %#x", target, p.Origin)
		}
		return encodeRXRaw(0x47, int(in.Cond), int64(d), 0, m.CodeBase)
	}
	disp, err := m.poolDisp(p, in.PoolIx)
	if err != nil {
		return nil, err
	}
	load, err := encodeRXRaw(0x58, in.Scratch, disp, 0, m.PoolBase)
	if err != nil {
		return nil, err
	}
	return append(load, 0x07, byte(in.Cond<<4)|byte(in.Scratch)), nil
}

func (m *Machine) encodeCaseLoad(p *asm.Program, in *asm.Instr) ([]byte, error) {
	disp, err := m.poolDisp(p, in.PoolIx)
	if err != nil {
		return nil, err
	}
	out, err := encodeRXRaw(0x58, in.Scratch, disp, 0, m.PoolBase)
	if err != nil {
		return nil, err
	}
	entry, err := encodeRXRaw(0x58, in.Scratch, 0, in.IndexR, in.Scratch)
	if err != nil {
		return nil, err
	}
	out = append(out, entry...)
	return append(out, 0x07, byte(CondAlways<<4)|byte(in.Scratch)), nil
}

func (m *Machine) poolDisp(p *asm.Program, ix int) (int64, error) {
	if ix < 0 || ix >= len(p.Pool) {
		return 0, fmt.Errorf("s370: bad literal pool index %d", ix)
	}
	d := int64(p.PoolAddr(ix) - m.PoolBaseAddr)
	if d < 0 || d > 4095 {
		return 0, fmt.Errorf("s370: literal pool slot %d at displacement %d exceeds base register reach", ix, d)
	}
	return d, nil
}

func (m *Machine) encodePlain(in *asm.Instr) ([]byte, error) {
	info, ok := Lookup(in.Op)
	if !ok {
		return nil, fmt.Errorf("s370: unknown opcode %q", in.Op)
	}
	bad := func(format string, args ...any) ([]byte, error) {
		return nil, fmt.Errorf("s370: %s: %s", in.Op, fmt.Sprintf(format, args...))
	}
	switch info.Format {
	case RR:
		r1, ok1 := regOrMask(in.Opds, 0, info.Mask)
		r2, ok2 := regAt(in.Opds, 1)
		if !ok1 || !ok2 {
			return bad("expects two register operands, got %v", in.Opds)
		}
		return []byte{info.Code, byte(r1<<4) | byte(r2)}, nil
	case RX:
		r1, ok1 := regOrMask(in.Opds, 0, info.Mask)
		if !ok1 || len(in.Opds) != 2 || in.Opds[1].Kind != asm.Mem {
			return bad("expects register and storage operands, got %v", in.Opds)
		}
		mem := in.Opds[1]
		return encodeRXRaw(info.Code, r1, mem.Val, mem.Index, mem.Base)
	case RS:
		if info.Shift {
			r1, ok1 := regAt(in.Opds, 0)
			if !ok1 || len(in.Opds) != 2 {
				return bad("expects register and shift amount, got %v", in.Opds)
			}
			// The shift amount is the low bits of a d2(b2) effective
			// address: a plain immediate, or a register-held count.
			var amount int64
			base := 0
			switch in.Opds[1].Kind {
			case asm.Imm:
				amount = in.Opds[1].Val
			case asm.Mem:
				amount = in.Opds[1].Val
				base = in.Opds[1].Base
				if in.Opds[1].Index != 0 {
					return bad("shift operand cannot be indexed")
				}
			case asm.Reg:
				base = in.Opds[1].Reg // count in a register: 0(rN)
			default:
				return bad("bad shift operand %v", in.Opds[1])
			}
			if amount < 0 || amount > 4095 || !validReg(base) {
				return bad("shift amount %d out of range", amount)
			}
			return []byte{info.Code, byte(r1 << 4),
				byte(base<<4) | byte(amount>>8), byte(amount)}, nil
		}
		r1, ok1 := regAt(in.Opds, 0)
		r3, ok3 := regAt(in.Opds, 1)
		if !ok1 || !ok3 || len(in.Opds) != 3 || in.Opds[2].Kind != asm.Mem {
			return bad("expects two registers and a storage operand, got %v", in.Opds)
		}
		mem := in.Opds[2]
		if mem.Index != 0 {
			return bad("RS storage operand cannot be indexed")
		}
		if err := checkDisp(mem.Val); err != nil {
			return bad("%v", err)
		}
		return []byte{info.Code, byte(r1<<4) | byte(r3),
			byte(mem.Base<<4) | byte(mem.Val>>8), byte(mem.Val)}, nil
	case SI:
		if len(in.Opds) != 2 || in.Opds[0].Kind != asm.Mem || in.Opds[1].Kind != asm.Imm {
			return bad("expects storage and immediate operands, got %v", in.Opds)
		}
		mem, imm := in.Opds[0], in.Opds[1].Val
		if mem.Index != 0 {
			return bad("SI storage operand cannot be indexed")
		}
		if err := checkDisp(mem.Val); err != nil {
			return bad("%v", err)
		}
		if imm < 0 || imm > 255 {
			return bad("immediate %d out of byte range", imm)
		}
		return []byte{info.Code, byte(imm),
			byte(mem.Base<<4) | byte(mem.Val>>8), byte(mem.Val)}, nil
	case SS:
		if len(in.Opds) != 2 || in.Opds[0].Kind != asm.MemLen || in.Opds[1].Kind != asm.Mem {
			return bad("expects length-form and plain storage operands, got %v", in.Opds)
		}
		d1, d2 := in.Opds[0], in.Opds[1]
		if err := checkDisp(d1.Val); err != nil {
			return bad("%v", err)
		}
		if err := checkDisp(d2.Val); err != nil {
			return bad("%v", err)
		}
		if d1.Len < 0 || d1.Len > 255 {
			return bad("length code %d out of range", d1.Len)
		}
		if d2.Index != 0 {
			return bad("SS storage operand cannot be indexed")
		}
		return []byte{info.Code, byte(d1.Len),
			byte(d1.Base<<4) | byte(d1.Val>>8), byte(d1.Val),
			byte(d2.Base<<4) | byte(d2.Val>>8), byte(d2.Val)}, nil
	}
	return bad("unhandled format")
}

func encodeRXRaw(code byte, r1 int, disp int64, index, base int) ([]byte, error) {
	if err := checkDisp(disp); err != nil {
		return nil, fmt.Errorf("s370: opcode %#x: %w", code, err)
	}
	if !validReg(r1) || !validReg(index) || !validReg(base) {
		return nil, fmt.Errorf("s370: opcode %#x: register field out of range (%d,%d,%d)", code, r1, index, base)
	}
	return []byte{code, byte(r1<<4) | byte(index),
		byte(base<<4) | byte(disp>>8), byte(disp)}, nil
}

func checkDisp(d int64) error {
	if d < 0 || d > 4095 {
		return fmt.Errorf("displacement %d exceeds base register reach (0..4095)", d)
	}
	return nil
}

func validReg(r int) bool { return r >= 0 && r <= 15 }

// regAt reads a register operand. Immediates in the register range are
// accepted too: specification constants such as stack_base denote
// register numbers when they appear in register positions.
func regAt(opds []asm.Operand, i int) (int, bool) {
	if i >= len(opds) {
		return 0, false
	}
	switch opds[i].Kind {
	case asm.Reg:
		if validReg(opds[i].Reg) {
			return opds[i].Reg, true
		}
	case asm.Imm:
		if opds[i].Val >= 0 && opds[i].Val <= 15 {
			return int(opds[i].Val), true
		}
	}
	return 0, false
}

func regOrMask(opds []asm.Operand, i int, mask bool) (int, bool) {
	if i >= len(opds) {
		return 0, false
	}
	if mask {
		if opds[i].Kind != asm.Imm || opds[i].Val < 0 || opds[i].Val > 15 {
			return 0, false
		}
		return int(opds[i].Val), true
	}
	return regAt(opds, i)
}

// Format implements asm.Machine: assembler-style rendering.
func (m *Machine) Format(in *asm.Instr) string {
	switch in.Pseudo {
	case asm.LabelMark:
		return fmt.Sprintf("L%d equ *", in.Label)
	case asm.AddrConst:
		return fmt.Sprintf("dc    a(L%d)", in.Label)
	case asm.Branch:
		form := "bc "
		if in.Long {
			form = "bc*" // long form: load target address, branch via register
		}
		return fmt.Sprintf("%s   %d,L%d", form, in.Cond, in.Label)
	case asm.CaseLoad:
		return fmt.Sprintf("case  L%d(r%d),r%d", in.Label, in.IndexR, in.Scratch)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s ", in.Op)
	for i, o := range in.Opds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(formatOperand(in, i, o))
	}
	return b.String()
}

func formatOperand(in *asm.Instr, i int, o asm.Operand) string {
	info, _ := Lookup(in.Op)
	switch o.Kind {
	case asm.Reg:
		return fmt.Sprintf("r%d", o.Reg)
	case asm.Imm:
		if i == 0 && info.Mask {
			return fmt.Sprint(o.Val)
		}
		// Specification constants in register positions (stack_base in
		// `stm r14,stack_base,...`) list as registers.
		if regPosition(info, i) && o.Val >= 0 && o.Val <= 15 {
			return fmt.Sprintf("r%d", o.Val)
		}
		return fmt.Sprint(o.Val)
	case asm.Mem:
		switch {
		case o.Index != 0 && o.Base != 0:
			return fmt.Sprintf("%d(r%d,r%d)", o.Val, o.Index, o.Base)
		case o.Index != 0:
			return fmt.Sprintf("%d(r%d,r0)", o.Val, o.Index)
		case o.Base != 0:
			return fmt.Sprintf("%d(r%d)", o.Val, o.Base)
		default:
			return fmt.Sprint(o.Val)
		}
	case asm.MemLen:
		return fmt.Sprintf("%d(%d,r%d)", o.Val, o.Len, o.Base)
	case asm.LabelOp:
		return fmt.Sprintf("L%d", o.Val)
	}
	return "?"
}

// regPosition reports whether operand i of the instruction is a register
// field by format.
func regPosition(info OpInfo, i int) bool {
	switch info.Format {
	case RR:
		return true
	case RX:
		return i == 0
	case RS:
		return !info.Shift && i <= 1 || info.Shift && i == 0
	}
	return false
}
