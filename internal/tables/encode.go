package tables

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"cogg/internal/faultinject"
	"cogg/internal/grammar"
	"cogg/internal/lr"
)

// magic identifies a serialized table module. The trailing digit is the
// format version: any change to the encoding below must bump it, which
// invalidates every cached module on disk (package batch keys its cache
// on FormatVersion).
var magic = [8]byte{'C', 'o', 'G', 'G', 't', 'b', 'l', '1'}

// FormatVersion returns the serialization format identifier (the magic
// string, version digit included). Cache keys for encoded modules must
// incorporate it so a format change can never resurrect stale bytes.
func FormatVersion() string { return string(magic[:]) }

// SectionSizes reports the serialized size of each component of a table
// module, the raw material of the paper's Table 2.
type SectionSizes struct {
	Symbols      int // symbol table bytes
	Templates    int // template array bytes (Table 2 entry i)
	Compressed   int // compressed parse table bytes (entry ii)
	Uncompressed int // uncompressed parse table bytes (entry iii)
	Total        int // bytes actually written (symbols+templates+compressed)
}

// Module bundles everything a code generator needs at translation time.
type Module struct {
	Grammar *grammar.Grammar
	Packed  *Packed

	// Dense, when set, makes generators built from this module dispatch
	// parse actions through the uncompressed table instead of Packed —
	// the space/time ablation knob for the compression experiments. It
	// is never serialized: Encode ignores it and Decode leaves it nil.
	Dense *lr.Table
}

// Encode serializes the module and reports section sizes. Only the
// compressed table is stored; the uncompressed size is accounted for
// comparison.
func Encode(w io.Writer, g *grammar.Grammar, t *lr.Table, p *Packed) (SectionSizes, error) {
	sizes, err := EncodeModule(w, &Module{Grammar: g, Packed: p})
	sizes.Uncompressed = UncompressedSizeBytes(t)
	return sizes, err
}

// EncodeModule serializes a module without an lr.Table in hand — the
// re-encoding path for modules reconstituted by Decode (the uncompressed
// size cannot be accounted and is reported as zero). The byte stream is
// identical to Encode's for the same grammar and packed table.
func EncodeModule(w io.Writer, m *Module) (SectionSizes, error) {
	var sizes SectionSizes
	var buf bytes.Buffer
	buf.Write(magic[:])

	start := buf.Len()
	encodeSymbols(&buf, m.Grammar)
	sizes.Symbols = buf.Len() - start

	start = buf.Len()
	encodeProds(&buf, m.Grammar)
	sizes.Templates = buf.Len() - start

	start = buf.Len()
	if err := encodePacked(&buf, m.Packed); err != nil {
		return sizes, err
	}
	sizes.Compressed = buf.Len() - start

	sizes.Total = buf.Len()
	_, err := w.Write(buf.Bytes())
	return sizes, err
}

// Decode reads a module serialized by Encode. Beyond parsing, the
// decoded module is validated for internal consistency — every index
// the code generator will follow blindly at translation time (symbol
// references, action targets, check entries) must be in range — so a
// corrupt or adversarial byte stream yields an error, never a panic in
// the driver.
func Decode(r io.Reader) (*Module, error) {
	if err := faultinject.Eval("tables/decode", ""); err != nil {
		return nil, fmt.Errorf("tables: decode: %w", err)
	}
	d := &decoder{r: r}
	var got [8]byte
	d.bytes(got[:])
	if d.err == nil && got != magic {
		return nil, fmt.Errorf("tables: bad magic %q", got[:])
	}
	g := decodeSymbols(d)
	decodeProds(d, g)
	p := decodePacked(d)
	if d.err != nil {
		return nil, fmt.Errorf("tables: decode: %w", d.err)
	}
	m := &Module{Grammar: g, Packed: p}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("tables: decode: %w", err)
	}
	return m, nil
}

// validate checks the cross-references a decoded module's consumers
// follow without bounds checks: the parse loop indexes ColOf by symbol
// id and Base by state, shift targets become states, reduce targets
// become productions, and semantic processing indexes the symbol table
// through production fields.
func (m *Module) validate() error {
	g, p := m.Grammar, m.Packed
	nsym := len(g.Syms)
	if g.Lambda < 0 || g.Lambda >= nsym {
		return fmt.Errorf("lambda symbol %d out of range (%d symbols)", g.Lambda, nsym)
	}
	checkSym := func(what string, id int) error {
		if id < 0 || id >= nsym {
			return fmt.Errorf("%s references symbol %d (have %d)", what, id, nsym)
		}
		return nil
	}
	for i, prod := range g.Prods {
		what := fmt.Sprintf("production %d", i)
		if err := checkSym(what, prod.LHS); err != nil {
			return err
		}
		for _, s := range prod.RHS {
			if err := checkSym(what, s); err != nil {
				return err
			}
		}
		for _, u := range prod.Uses {
			if err := checkSym(what, u.Sym); err != nil {
				return err
			}
		}
		for _, u := range prod.Needs {
			if err := checkSym(what, u.Sym); err != nil {
				return err
			}
		}
		for _, t := range prod.Templates {
			for _, o := range t.Operands {
				if err := checkSym(what, o.Base.Sym); err != nil {
					return err
				}
				for _, s := range o.Sub {
					if err := checkSym(what, s.Sym); err != nil {
						return err
					}
				}
			}
		}
	}

	if p.NumStates < 1 {
		return fmt.Errorf("packed table has %d states", p.NumStates)
	}
	if len(p.Base) != p.NumStates {
		return fmt.Errorf("base array holds %d entries for %d states", len(p.Base), p.NumStates)
	}
	if len(p.ColOf) != nsym+1 {
		// One column slot per grammar symbol plus the EOF pseudo-symbol
		// (see lr.Automaton.NumSymbols).
		return fmt.Errorf("column map covers %d symbols, grammar has %d plus EOF", len(p.ColOf), nsym)
	}
	for sym, col := range p.ColOf {
		if col < -1 || int(col) >= p.NumCols {
			return fmt.Errorf("symbol %d maps to column %d of %d", sym, col, p.NumCols)
		}
	}
	if len(p.Data) != len(p.Check) {
		return fmt.Errorf("data and check arrays differ: %d vs %d entries", len(p.Data), len(p.Check))
	}
	for i, c := range p.Check {
		if c < 0 || int(c) > p.NumStates {
			return fmt.Errorf("check entry %d names state %d of %d", i, c-1, p.NumStates)
		}
		if c == 0 {
			continue // free slot; its action is never followed
		}
		// A significant entry is reached only as Base[state]+ColOf[sym],
		// so its displacement from its owner's base must be a real
		// lookahead column; an entry outside [0, NumCols) claims a
		// lookahead symbol beyond the declared universe.
		if col := i - int(p.Base[c-1]); col < 0 || col >= p.NumCols {
			return fmt.Errorf("entry %d of state %d is at lookahead column %d of %d", i, c-1, col, p.NumCols)
		}
		a := p.Data[i]
		switch a.Kind() {
		case lr.Shift:
			if a.Target() >= p.NumStates {
				return fmt.Errorf("entry %d shifts to state %d of %d", i, a.Target(), p.NumStates)
			}
		case lr.Reduce:
			if a.Target() >= len(g.Prods) {
				return fmt.Errorf("entry %d reduces by production %d of %d", i, a.Target(), len(g.Prods))
			}
		}
	}
	return nil
}

// --- encoding helpers -------------------------------------------------

func putU16(buf *bytes.Buffer, v uint16) {
	buf.WriteByte(byte(v))
	buf.WriteByte(byte(v >> 8))
}

func putU32(buf *bytes.Buffer, v int) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	buf.Write(b[:])
}

func putI64(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

func putStr(buf *bytes.Buffer, s string) {
	putU32(buf, len(s))
	buf.WriteString(s)
}

func encodeSymbols(buf *bytes.Buffer, g *grammar.Grammar) {
	putStr(buf, g.Name)
	putU32(buf, g.Lambda)
	putU32(buf, len(g.Syms))
	for _, s := range g.Syms {
		putStr(buf, s.Name)
		putU32(buf, int(s.Kind))
		putI64(buf, s.Value)
	}
}

func encodeArg(buf *bytes.Buffer, a grammar.Arg) {
	flag := 0
	if a.IsRef {
		flag = 1
	}
	putU32(buf, flag)
	putU32(buf, a.Sym)
	putU32(buf, a.Tag)
	putI64(buf, a.Num)
}

func encodeProds(buf *bytes.Buffer, g *grammar.Grammar) {
	putU32(buf, len(g.Prods))
	for _, p := range g.Prods {
		putU32(buf, p.Num)
		putU32(buf, p.LHS)
		putU32(buf, p.LHSTag+1) // bias so -1 encodes as 0
		putU32(buf, len(p.RHS))
		for i := range p.RHS {
			putU32(buf, p.RHS[i])
			putU32(buf, p.RHSTags[i]+1)
		}
		putU32(buf, len(p.Uses))
		for _, u := range p.Uses {
			putU32(buf, u.Sym)
			putU32(buf, u.Tag)
		}
		putU32(buf, len(p.Needs))
		for _, u := range p.Needs {
			putU32(buf, u.Sym)
			putU32(buf, u.Tag)
		}
		putU32(buf, len(p.Templates))
		for _, t := range p.Templates {
			putU32(buf, t.Op)
			sem := 0
			if t.Semantic {
				sem = 1
			}
			putU32(buf, sem)
			putU32(buf, len(t.Operands))
			for _, o := range t.Operands {
				encodeArg(buf, o.Base)
				putU32(buf, len(o.Sub))
				for _, s := range o.Sub {
					encodeArg(buf, s)
				}
			}
		}
	}
}

func encodePacked(buf *bytes.Buffer, p *Packed) error {
	putU32(buf, p.NumStates)
	putU32(buf, p.NumCols)
	putU32(buf, len(p.ColOf))
	for _, v := range p.ColOf {
		putU16(buf, uint16(v)) // -1 wraps to 0xFFFF
	}
	putU32(buf, len(p.Base))
	for _, v := range p.Base {
		putU32(buf, int(v))
	}
	putU32(buf, len(p.Data))
	for _, v := range p.Data {
		a16, ok := v.Pack16()
		if !ok {
			return fmt.Errorf("tables: action target %d exceeds the 14-bit packed form", v.Target())
		}
		putU16(buf, a16)
	}
	putU32(buf, len(p.Check))
	for _, v := range p.Check {
		if v < 0 || v > 0xFFFF {
			return fmt.Errorf("tables: check entry %d exceeds sixteen bits", v)
		}
		putU16(buf, uint16(v))
	}
	return nil
}

// --- decoding helpers -------------------------------------------------

type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *decoder) u16() uint16 {
	var b [2]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (d *decoder) u32() int {
	var b [4]byte
	d.bytes(b[:])
	return int(int32(binary.LittleEndian.Uint32(b[:])))
}

func (d *decoder) i64() int64 {
	var b [8]byte
	d.bytes(b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || n < 0 || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("string length %d out of range", n)
		}
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *decoder) count(limit int) int {
	n := d.u32()
	if d.err == nil && (n < 0 || n > limit) {
		d.err = fmt.Errorf("count %d out of range (limit %d)", n, limit)
		return 0
	}
	return n
}

func decodeSymbols(d *decoder) *grammar.Grammar {
	g := &grammar.Grammar{}
	g.Name = d.str()
	g.Lambda = d.u32()
	n := d.count(1 << 20)
	for i := 0; i < n; i++ {
		name := d.str()
		kind := grammar.Kind(d.u32())
		value := d.i64()
		if d.err != nil {
			return g
		}
		g.AddSymbol(name, kind, value)
	}
	return g
}

func decodeArg(d *decoder) grammar.Arg {
	var a grammar.Arg
	a.IsRef = d.u32() == 1
	a.Sym = d.u32()
	a.Tag = d.u32()
	a.Num = d.i64()
	return a
}

func decodeProds(d *decoder, g *grammar.Grammar) {
	n := d.count(1 << 20)
	for i := 0; i < n && d.err == nil; i++ {
		p := &grammar.Prod{}
		p.Num = d.u32()
		p.LHS = d.u32()
		p.LHSTag = d.u32() - 1
		rhsLen := d.count(1 << 10)
		for j := 0; j < rhsLen; j++ {
			p.RHS = append(p.RHS, d.u32())
			p.RHSTags = append(p.RHSTags, d.u32()-1)
		}
		uses := d.count(1 << 10)
		for j := 0; j < uses; j++ {
			p.Uses = append(p.Uses, grammar.Ref{Sym: d.u32(), Tag: d.u32()})
		}
		needs := d.count(1 << 10)
		for j := 0; j < needs; j++ {
			p.Needs = append(p.Needs, grammar.Ref{Sym: d.u32(), Tag: d.u32()})
		}
		tmpls := d.count(1 << 10)
		for j := 0; j < tmpls; j++ {
			var t grammar.Template
			t.Op = d.u32()
			t.Semantic = d.u32() == 1
			operands := d.count(1 << 10)
			for k := 0; k < operands; k++ {
				var o grammar.Operand
				o.Base = decodeArg(d)
				subs := d.count(2)
				for m := 0; m < subs; m++ {
					o.Sub = append(o.Sub, decodeArg(d))
				}
				t.Operands = append(t.Operands, o)
			}
			p.Templates = append(p.Templates, t)
		}
		g.Prods = append(g.Prods, p)
	}
}

func decodePacked(d *decoder) *Packed {
	// Every loop bails on the first read error: a truncated stream
	// claiming 2^24 entries must not spin through millions of zero
	// reads before the error surfaces.
	p := &Packed{}
	p.NumStates = d.u32()
	p.NumCols = d.u32()
	n := d.count(1 << 24)
	for i := 0; i < n && d.err == nil; i++ {
		p.ColOf = append(p.ColOf, int32(int16(d.u16())))
	}
	n = d.count(1 << 24)
	for i := 0; i < n && d.err == nil; i++ {
		p.Base = append(p.Base, int32(d.u32()))
	}
	n = d.count(1 << 24)
	for i := 0; i < n && d.err == nil; i++ {
		p.Data = append(p.Data, lr.Unpack16(d.u16()))
	}
	n = d.count(1 << 24)
	for i := 0; i < n && d.err == nil; i++ {
		p.Check = append(p.Check, int32(d.u16()))
	}
	return p
}
