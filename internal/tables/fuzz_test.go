package tables_test

import (
	"bytes"
	"testing"

	"cogg/internal/tables"
	"cogg/specs"
)

// FuzzTableDecode feeds mutated .cogtbl byte streams to the module
// decoder. Decode's contract is errors, never panics — a corrupt cache
// entry must degrade to regeneration, not take the process down — and
// any module it does accept must answer every (state, symbol) lookup
// without going out of bounds.
func FuzzTableDecode(f *testing.F) {
	cg := buildFrom(f, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:9])
	f.Add([]byte("CoGGtbl1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d-byte input: %v", len(data), r)
			}
		}()
		mod, err := tables.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted modules passed validation; prove the lookups it
		// guards really are in bounds.
		states := mod.Packed.NumStates
		if states > 64 {
			states = 64
		}
		for state := 0; state < states; state++ {
			for sym := 0; sym < len(mod.Packed.ColOf); sym++ {
				mod.Packed.Lookup(state, sym)
			}
		}
	})
}
