package tables_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cogg/internal/core"
	"cogg/internal/lr"
	"cogg/internal/tables"
	"cogg/specs"
)

// buildFrom constructs tables from a spec source.
func buildFrom(t testing.TB, name, src string) *core.CodeGenerator {
	t.Helper()
	cg, err := core.Generate(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestPages(t *testing.T) {
	if tables.Pages(4096) != 1.0 {
		t.Errorf("Pages(4096) = %v", tables.Pages(4096))
	}
	if tables.Pages(2048) != 0.5 {
		t.Errorf("Pages(2048) = %v", tables.Pages(2048))
	}
}

// TestPackEquivalenceMinimal: the packed table answers identically to
// the dense one for the minimal grammar (the full grammar is covered in
// package core's tests).
func TestPackEquivalenceMinimal(t *testing.T) {
	cg := buildFrom(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	p := tables.Pack(cg.Table)
	for state := 0; state < cg.Table.NumStates; state++ {
		for sym := 0; sym < len(cg.Table.ColOf); sym++ {
			if got, want := p.Lookup(state, sym), cg.Table.Lookup(state, sym); got != want {
				t.Fatalf("(%d,%d): packed %v, dense %v", state, sym, got, want)
			}
		}
	}
}

// TestPackOutOfRange: lookups outside any comb row return Error rather
// than a neighbour's action.
func TestPackOutOfRange(t *testing.T) {
	cg := buildFrom(t, "risc32.cogg", specs.Risc32)
	p := tables.Pack(cg.Table)
	// A state with an empty row: find one and probe every symbol.
	for state := 0; state < p.NumStates; state++ {
		for sym := 0; sym < len(p.ColOf); sym++ {
			if p.ColOf[sym] < 0 {
				if got := p.Lookup(state, sym); got.Kind() != lr.Error {
					t.Fatalf("columnless symbol %d returned %v", sym, got)
				}
			}
		}
	}
}

// TestQuickPackedRandomProbes: random probes against the dense table.
func TestQuickPackedRandomProbes(t *testing.T) {
	cg := buildFrom(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	p := tables.Pack(cg.Table)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 32; i++ {
			state := r.Intn(p.NumStates)
			sym := r.Intn(len(p.ColOf))
			if p.Lookup(state, sym) != cg.Table.Lookup(state, sym) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompressedSmallerThanDense(t *testing.T) {
	for _, s := range []struct{ name, src string }{
		{"amdahl470.cogg", specs.Amdahl470},
		{"amdahl-minimal.cogg", specs.AmdahlMinimal},
		{"risc32.cogg", specs.Risc32},
	} {
		cg := buildFrom(t, s.name, s.src)
		p := tables.Pack(cg.Table)
		if p.SizeBytes() >= tables.UncompressedSizeBytes(cg.Table) {
			t.Errorf("%s: compressed %d >= dense %d", s.name,
				p.SizeBytes(), tables.UncompressedSizeBytes(cg.Table))
		}
	}
}

func TestEncodeSizesMatchStream(t *testing.T) {
	cg := buildFrom(t, "risc32.cogg", specs.Risc32)
	var buf bytes.Buffer
	sz, err := cg.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Total != buf.Len() {
		t.Errorf("Total %d != stream %d", sz.Total, buf.Len())
	}
	if got := 8 + sz.Symbols + sz.Templates + sz.Compressed; got != buf.Len() {
		t.Errorf("section sizes %d do not add up to %d", got, buf.Len())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := tables.Decode(bytes.NewReader([]byte("not a table module"))); err == nil {
		t.Error("Decode accepted garbage")
	}
	// Truncation after the magic.
	cg := buildFrom(t, "risc32.cogg", specs.Risc32)
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{9, 20, buf.Len() / 2, buf.Len() - 1} {
		if _, err := tables.Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("Decode accepted a module truncated to %d bytes", cut)
		}
	}
}

func TestDecodedModuleDrivesSameActions(t *testing.T) {
	cg := buildFrom(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	mod, err := tables.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for state := 0; state < cg.Packed.NumStates; state += 3 {
		for sym := 0; sym < len(cg.Packed.ColOf); sym++ {
			if got, want := mod.Packed.Lookup(state, sym), cg.Packed.Lookup(state, sym); got != want {
				t.Fatalf("(%d,%d): decoded %v, original %v", state, sym, got, want)
			}
		}
	}
	// Grammar round trip: production templates preserved.
	for i, p := range cg.Grammar.Prods {
		q := mod.Grammar.Prods[i]
		if len(p.Templates) != len(q.Templates) || len(p.RHS) != len(q.RHS) ||
			len(p.Uses) != len(q.Uses) || len(p.Needs) != len(q.Needs) {
			t.Fatalf("production %d shape changed across encode/decode", p.Num)
		}
	}
}

// TestDedupEquivalence: the row-merged table answers identically.
func TestDedupEquivalence(t *testing.T) {
	for _, s := range []struct{ name, src string }{
		{"amdahl470.cogg", specs.Amdahl470},
		{"amdahl-minimal.cogg", specs.AmdahlMinimal},
	} {
		cg := buildFrom(t, s.name, s.src)
		d := tables.PackDedup(cg.Table)
		for state := 0; state < cg.Table.NumStates; state++ {
			for sym := 0; sym < len(cg.Table.ColOf); sym++ {
				if got, want := d.Lookup(state, sym), cg.Table.Lookup(state, sym); got != want {
					t.Fatalf("%s (%d,%d): dedup %v, dense %v", s.name, state, sym, got, want)
				}
			}
		}
		// The documented negative result: LR action rows carry
		// state-specific shift targets, so nothing merges.
		if d.UniqueRows() != cg.Table.NumStates {
			t.Logf("%s: %d unique rows of %d states", s.name, d.UniqueRows(), cg.Table.NumStates)
		}
	}
}

// TestDecodeRejectsOutOfUniverseLookahead is the corrupted-module
// regression for the packed-table displacement check: a significant
// action entry whose offset from its owning state's base falls outside
// [0, NumCols) claims a lookahead symbol beyond the declared symbol
// universe, and Decode must refuse the module rather than let the
// parse loop follow it.
func TestDecodeRejectsOutOfUniverseLookahead(t *testing.T) {
	cg := buildFrom(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine, err := tables.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Find a significant entry and push its owner's base past it, so the
	// entry's displacement goes negative; then pull the base back until
	// the displacement lands at NumCols, just over the high edge.
	target := -1
	for i, c := range pristine.Packed.Check {
		if c != 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("module has no significant entries")
	}
	owner := pristine.Packed.Check[target] - 1
	for _, bad := range []int32{int32(target) + 1, int32(target - pristine.Packed.NumCols)} {
		corrupt, err := tables.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		corrupt.Packed.Base[owner] = bad
		var reenc bytes.Buffer
		if _, err := tables.EncodeModule(&reenc, corrupt); err != nil {
			t.Fatal(err)
		}
		if _, err := tables.Decode(bytes.NewReader(reenc.Bytes())); err == nil {
			t.Errorf("Decode accepted a module whose state %d base %d puts entry %d outside the symbol universe",
				owner, bad, target)
		} else if !strings.Contains(err.Error(), "lookahead column") {
			t.Errorf("base %d: error %q does not name the lookahead column", bad, err)
		}
	}
}
