package tables

import "cogg/internal/lr"

// PackedDedup is an ablation of the row-displacement scheme: identical
// rows are merged before comb packing. The measured result is negative —
// in an LR action table every row carries state-specific shift targets,
// so no two rows coincide and the extra row-index array only adds
// overhead (see BenchmarkCompressionAblation). The further step, default
// reductions, would shrink the table but conflicts with the scheme's
// central guarantee: a default reduce runs instruction templates before
// the error is noticed, and the paper requires the generator to "stop
// and signal an error" instead of emitting a wrong sequence. The comb
// over significant entries is what remains.
type PackedDedup struct {
	NumStates int
	NumCols   int
	ColOf     []int32
	RowOf     []int32 // state -> unique row id
	Base      []int32 // per unique row
	Data      []lr.Action
	Check     []int32 // owning unique row + 1
}

// PackDedup merges identical rows, then comb-packs the unique ones.
func PackDedup(t *lr.Table) *PackedDedup {
	p := &PackedDedup{
		NumStates: t.NumStates,
		NumCols:   t.NumCols,
		ColOf:     append([]int32(nil), t.ColOf...),
		RowOf:     make([]int32, t.NumStates),
	}
	// Identify unique rows.
	index := map[string]int32{}
	var uniques [][]lr.Action
	for s := 0; s < t.NumStates; s++ {
		row := t.Row(s)
		key := rowKey(row)
		id, ok := index[key]
		if !ok {
			id = int32(len(uniques))
			index[key] = id
			uniques = append(uniques, row)
		}
		p.RowOf[s] = id
	}
	p.Base = make([]int32, len(uniques))

	// Comb-pack unique rows, densest first.
	order := make([]int, len(uniques))
	for i := range order {
		order[i] = i
	}
	density := func(i int) int {
		n := 0
		for _, a := range uniques[i] {
			if a.Kind() != lr.Error {
				n++
			}
		}
		return n
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && density(order[j]) > density(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	grow := func(n int) {
		for len(p.Data) < n {
			p.Data = append(p.Data, 0)
			p.Check = append(p.Check, 0)
		}
	}
	for _, id := range order {
		row := uniques[id]
		var cols []int32
		for c, a := range row {
			if a.Kind() != lr.Error {
				cols = append(cols, int32(c))
			}
		}
		if len(cols) == 0 {
			p.Base[id] = 0
			continue
		}
		base := -cols[0]
	search:
		for ; ; base++ {
			for _, c := range cols {
				idx := int(base + c)
				if idx < len(p.Check) && p.Check[idx] != 0 {
					continue search
				}
			}
			break
		}
		p.Base[id] = base
		for _, c := range cols {
			idx := int(base + c)
			grow(idx + 1)
			p.Data[idx] = row[c]
			p.Check[idx] = int32(id) + 1
		}
	}
	return p
}

func rowKey(row []lr.Action) string {
	b := make([]byte, 0, len(row)*4)
	for _, a := range row {
		b = append(b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return string(b)
}

// Lookup returns the action for (state, symbol id).
func (p *PackedDedup) Lookup(state, sym int) lr.Action {
	col := p.ColOf[sym]
	if col < 0 {
		return lr.MkAction(lr.Error, 0)
	}
	row := p.RowOf[state]
	idx := int(p.Base[row]) + int(col)
	if idx < 0 || idx >= len(p.Check) || p.Check[idx] != row+1 {
		return lr.MkAction(lr.Error, 0)
	}
	return p.Data[idx]
}

// UniqueRows reports how many distinct rows the table has.
func (p *PackedDedup) UniqueRows() int { return len(p.Base) }

// SizeBytes accounts the storage with the same entry widths as Packed:
// two bytes per data/check/column entry, two per row index, four per
// base.
func (p *PackedDedup) SizeBytes() int {
	return 2*len(p.ColOf) + 2*len(p.RowOf) + 4*len(p.Base) + 2*len(p.Data) + 2*len(p.Check)
}
