// Package tables packs, compresses, and serializes the driving tables of
// a generated code generator, and accounts for their storage in 4096-byte
// pages (the unit of the paper's Table 2).
//
// Two table forms are provided:
//
//   - the uncompressed action matrix (states x symbols), and
//   - a row-displacement ("comb") compression: significant entries of all
//     rows are interleaved into a single data array with a check array
//     identifying the owning row, exploiting the observation that fewer
//     than half of the entries are significant.
//
// The paper notes its compressed tables are "by no means minimally
// compressed"; row displacement matches that engineering point.
package tables

import (
	"math/bits"
	"sort"

	"cogg/internal/lr"
)

// PageSize is the storage accounting unit: one page on the Amdahl 470.
const PageSize = 4096

// Pages converts a byte count to (fractional) pages.
func Pages(bytes int) float64 { return float64(bytes) / PageSize }

// Packed is the row-displacement compressed action table.
type Packed struct {
	NumStates int
	NumCols   int
	ColOf     []int32     // symbol id -> column; -1 for non-IF symbols
	Base      []int32     // per-state displacement into Data/Check
	Data      []lr.Action // significant entries
	Check     []int32     // owning state + 1; 0 marks a free slot
}

// Pack compresses the action table by first-fit row displacement.
// Rows are placed densest-first, which keeps the comb tight. Occupancy
// during the first-fit search is tracked in a word-packed bitmap, so
// skipping past a filled region costs one trailing-zero count per 64
// slots rather than one check-array load per slot.
func Pack(t *lr.Table) *Packed {
	p := &Packed{
		NumStates: t.NumStates,
		NumCols:   t.NumCols,
		ColOf:     append([]int32(nil), t.ColOf...),
		Base:      make([]int32, t.NumStates),
	}

	// One pass over the dense matrix collects each row's significant
	// entries — column and action together, backed by two shared arrays —
	// so placement never rematerializes a dense row.
	all := t.Rows()
	nsig := 0
	for _, a := range all {
		if a.Kind() != lr.Error {
			nsig++
		}
	}
	colBuf := make([]int32, 0, nsig)
	actBuf := make([]lr.Action, 0, nsig)
	type rowInfo struct {
		state int
		cols  []int32
		acts  []lr.Action
	}
	rows := make([]rowInfo, 0, t.NumStates)
	for s := 0; s < t.NumStates; s++ {
		start := len(colBuf)
		off := s * t.NumCols
		for c := 0; c < t.NumCols; c++ {
			if a := all[off+c]; a.Kind() != lr.Error {
				colBuf = append(colBuf, int32(c))
				actBuf = append(actBuf, a)
			}
		}
		rows = append(rows, rowInfo{
			state: s,
			cols:  colBuf[start:len(colBuf):len(colBuf)],
			acts:  actBuf[start:len(actBuf):len(actBuf)],
		})
	}
	// Densest rows first, state id breaking ties: a total order, so the
	// sorted sequence — and with it every placement — is deterministic.
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].cols) != len(rows[j].cols) {
			return len(rows[i].cols) > len(rows[j].cols)
		}
		return rows[i].state < rows[j].state
	})

	// used marks occupied comb slots; bits beyond its length are free.
	used := make([]uint64, 0, (nsig+63)/32)
	var mask []uint64 // the row's occupancy pattern, relative to its first column
	maxIdx := -1
	for _, r := range rows {
		if len(r.cols) == 0 {
			p.Base[r.state] = 0
			continue
		}
		first := int(r.cols[0])
		span := int(r.cols[len(r.cols)-1]) - first + 1
		if need := (span + 63) / 64; cap(mask) < need {
			mask = make([]uint64, need)
		} else {
			mask = mask[:need]
			for i := range mask {
				mask[i] = 0
			}
		}
		for _, c := range r.cols {
			rel := int(c) - first
			mask[rel>>6] |= 1 << (uint(rel) & 63)
		}
		s := 0 // candidate slot for the first significant column
	search:
		for {
			// Skip to the next free slot for the first column.
			w := s >> 6
			for {
				if w >= len(used) {
					if s < w<<6 {
						s = w << 6
					}
					break
				}
				if v := ^used[w] & (^uint64(0) << (uint(s) & 63)); v != 0 {
					s = w<<6 | bits.TrailingZeros64(v)
					break
				}
				w++
				s = w << 6
			}
			// Compare the row mask against the occupancy window at s.
			w, b := s>>6, uint(s)&63
			for i, m := range mask {
				var u uint64
				if w+i < len(used) {
					u = used[w+i] >> b
				}
				if b != 0 && w+i+1 < len(used) {
					u |= used[w+i+1] << (64 - b)
				}
				if u&m != 0 {
					s++
					continue search
				}
			}
			break
		}
		base := s - first
		p.Base[r.state] = int32(base)
		for _, c := range r.cols {
			idx := base + int(c)
			w := idx >> 6
			for w >= len(used) {
				used = append(used, 0)
			}
			used[w] |= 1 << (uint(idx) & 63)
			if idx > maxIdx {
				maxIdx = idx
			}
		}
	}

	p.Data = make([]lr.Action, maxIdx+1)
	p.Check = make([]int32, maxIdx+1)
	for _, r := range rows {
		base := int(p.Base[r.state])
		for i, c := range r.cols {
			idx := base + int(c)
			p.Data[idx] = r.acts[i]
			p.Check[idx] = int32(r.state) + 1
		}
	}
	return p
}

// Lookup returns the action for (state, symbol id), Error for symbols
// without a column and for insignificant entries.
func (p *Packed) Lookup(state, sym int) lr.Action {
	col := p.ColOf[sym]
	if col < 0 {
		return lr.MkAction(lr.Error, 0)
	}
	idx := int(p.Base[state]) + int(col)
	if idx < 0 || idx >= len(p.Check) || p.Check[idx] != int32(state)+1 {
		return lr.MkAction(lr.Error, 0)
	}
	return p.Data[idx]
}

// SizeBytes returns the storage for the compressed table as serialized:
// two bytes per data and check entry (actions carry a 2-bit kind and a
// 14-bit target; check holds the owning state), four per base entry, two
// per column-map entry. The result is "by no means minimally compressed"
// (no row merging, no default actions), matching the paper's engineering
// point.
func (p *Packed) SizeBytes() int {
	return 2*len(p.ColOf) + 4*len(p.Base) + 2*len(p.Data) + 2*len(p.Check)
}

// UncompressedSizeBytes returns the storage for the dense matrix at four
// bytes per action.
func UncompressedSizeBytes(t *lr.Table) int { return 4 * t.NumStates * t.NumCols }
