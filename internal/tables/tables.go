// Package tables packs, compresses, and serializes the driving tables of
// a generated code generator, and accounts for their storage in 4096-byte
// pages (the unit of the paper's Table 2).
//
// Two table forms are provided:
//
//   - the uncompressed action matrix (states x symbols), and
//   - a row-displacement ("comb") compression: significant entries of all
//     rows are interleaved into a single data array with a check array
//     identifying the owning row, exploiting the observation that fewer
//     than half of the entries are significant.
//
// The paper notes its compressed tables are "by no means minimally
// compressed"; row displacement matches that engineering point.
package tables

import (
	"cogg/internal/lr"
)

// PageSize is the storage accounting unit: one page on the Amdahl 470.
const PageSize = 4096

// Pages converts a byte count to (fractional) pages.
func Pages(bytes int) float64 { return float64(bytes) / PageSize }

// Packed is the row-displacement compressed action table.
type Packed struct {
	NumStates int
	NumCols   int
	ColOf     []int32     // symbol id -> column; -1 for non-IF symbols
	Base      []int32     // per-state displacement into Data/Check
	Data      []lr.Action // significant entries
	Check     []int32     // owning state + 1; 0 marks a free slot
}

// Pack compresses the action table by first-fit row displacement.
// Rows are placed densest-first, which keeps the comb tight.
func Pack(t *lr.Table) *Packed {
	p := &Packed{
		NumStates: t.NumStates,
		NumCols:   t.NumCols,
		ColOf:     append([]int32(nil), t.ColOf...),
		Base:      make([]int32, t.NumStates),
	}

	type rowInfo struct {
		state int
		cols  []int32
	}
	rows := make([]rowInfo, 0, t.NumStates)
	for s := 0; s < t.NumStates; s++ {
		row := t.Row(s)
		var cols []int32
		for sym, a := range row {
			if a.Kind() != lr.Error {
				cols = append(cols, int32(sym))
			}
		}
		rows = append(rows, rowInfo{state: s, cols: cols})
	}
	// Densest rows first; stable on state id for determinism.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && denser(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}

	grow := func(n int) {
		for len(p.Data) < n {
			p.Data = append(p.Data, 0)
			p.Check = append(p.Check, 0)
		}
	}
	for _, r := range rows {
		if len(r.cols) == 0 {
			p.Base[r.state] = 0
			continue
		}
		base := int32(-r.cols[0]) // smallest legal displacement
	search:
		for ; ; base++ {
			for _, c := range r.cols {
				idx := int(base + c)
				if idx < len(p.Check) && p.Check[idx] != 0 {
					continue search
				}
			}
			break
		}
		p.Base[r.state] = base
		row := t.Row(r.state)
		for _, c := range r.cols {
			idx := int(base + c)
			grow(idx + 1)
			p.Data[idx] = row[c]
			p.Check[idx] = int32(r.state) + 1
		}
	}
	return p
}

func denser(a, b struct {
	state int
	cols  []int32
}) bool {
	if len(a.cols) != len(b.cols) {
		return len(a.cols) > len(b.cols)
	}
	return a.state < b.state
}

// Lookup returns the action for (state, symbol id), Error for symbols
// without a column and for insignificant entries.
func (p *Packed) Lookup(state, sym int) lr.Action {
	col := p.ColOf[sym]
	if col < 0 {
		return lr.MkAction(lr.Error, 0)
	}
	idx := int(p.Base[state]) + int(col)
	if idx < 0 || idx >= len(p.Check) || p.Check[idx] != int32(state)+1 {
		return lr.MkAction(lr.Error, 0)
	}
	return p.Data[idx]
}

// SizeBytes returns the storage for the compressed table as serialized:
// two bytes per data and check entry (actions carry a 2-bit kind and a
// 14-bit target; check holds the owning state), four per base entry, two
// per column-map entry. The result is "by no means minimally compressed"
// (no row merging, no default actions), matching the paper's engineering
// point.
func (p *Packed) SizeBytes() int {
	return 2*len(p.ColOf) + 4*len(p.Base) + 2*len(p.Data) + 2*len(p.Check)
}

// UncompressedSizeBytes returns the storage for the dense matrix at four
// bytes per action.
func UncompressedSizeBytes(t *lr.Table) int { return 4 * t.NumStates * t.NumCols }
