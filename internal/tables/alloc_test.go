package tables_test

import (
	"testing"

	"cogg/internal/tables"
	"cogg/specs"
)

// TestPackBoundedAllocs gates the comb packer's allocation count: Pack
// builds a handful of working buffers (the per-row column/action pools,
// the sort order, the occupancy bitmap and row masks, and the three
// output arrays) whose number does not depend on the state count.
// Growth of the shared pools adds a logarithmic number of doublings, so
// a small constant bound holds even for the full 800-state grammar; a
// regression to per-row or per-entry allocation blows straight past it.
func TestPackBoundedAllocs(t *testing.T) {
	cg := buildFrom(t, "amdahl470.cogg", specs.Amdahl470)
	const limit = 64
	allocs := testing.AllocsPerRun(3, func() {
		tables.Pack(cg.Table)
	})
	if allocs > limit {
		t.Errorf("Pack allocates %.0f times per run, want <= %d", allocs, limit)
	}
}
