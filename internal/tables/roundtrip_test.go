package tables_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/tables"
	"cogg/specs"
)

// randModule wraps a randomly generated table module for testing/quick.
// The generator respects the encoding's representational limits (14-bit
// action targets, 16-bit check entries, int16 column map) and Decode's
// consistency validation (in-range symbol references and action
// targets) but is otherwise unconstrained — the round-trip property
// must hold for any module Decode accepts, not just ones a real
// specification produces.
type randModule struct{ m *tables.Module }

func (randModule) Generate(r *rand.Rand, size int) reflect.Value {
	g := &grammar.Grammar{}
	nsyms := 1 + r.Intn(20)
	for i := 0; i < nsyms; i++ {
		g.AddSymbol(fmt.Sprintf("sym%d", i), grammar.Kind(r.Intn(6)), r.Int63n(2001)-1000)
	}
	g.Name = fmt.Sprintf("rand%d.cogg", r.Intn(1000))
	g.Lambda = r.Intn(nsyms)

	arg := func() grammar.Arg {
		return grammar.Arg{
			IsRef: r.Intn(2) == 1,
			Sym:   r.Intn(nsyms),
			Tag:   r.Intn(5) - 1,
			Num:   int64(r.Uint64()),
		}
	}
	ref := func() grammar.Ref { return grammar.Ref{Sym: r.Intn(nsyms), Tag: r.Intn(4)} }
	for pn := 0; pn < r.Intn(8); pn++ {
		p := &grammar.Prod{Num: pn + 1, LHS: r.Intn(nsyms), LHSTag: r.Intn(5) - 1}
		for j := 0; j < r.Intn(5); j++ {
			p.RHS = append(p.RHS, r.Intn(nsyms))
			p.RHSTags = append(p.RHSTags, r.Intn(5)-1)
		}
		for j := 0; j < r.Intn(3); j++ {
			p.Uses = append(p.Uses, ref())
		}
		for j := 0; j < r.Intn(3); j++ {
			p.Needs = append(p.Needs, ref())
		}
		for j := 0; j < r.Intn(4); j++ {
			t := grammar.Template{Op: r.Intn(nsyms), Semantic: r.Intn(2) == 1}
			for k := 0; k < r.Intn(3); k++ {
				o := grammar.Operand{Base: arg()}
				for m := 0; m < r.Intn(3); m++ {
					o.Sub = append(o.Sub, arg())
				}
				t.Operands = append(t.Operands, o)
			}
			p.Templates = append(p.Templates, t)
		}
		g.Prods = append(g.Prods, p)
	}

	p := &tables.Packed{
		NumStates: 1 + r.Intn(8),
		NumCols:   1 + r.Intn(8),
	}
	for i := 0; i <= nsyms; i++ {
		p.ColOf = append(p.ColOf, int32(r.Intn(p.NumCols+1)-1)) // -1 marks no column
	}
	for i := 0; i < p.NumStates; i++ {
		p.Base = append(p.Base, int32(r.Intn(33)-16))
	}
	entries := r.Intn(33)
	for i := 0; i < entries; i++ {
		// Occupied slots must satisfy Decode's consistency validation:
		// shift targets are states, reduce targets are productions, and
		// the slot's displacement from its owner's base must be a real
		// lookahead column. Free slots (check 0) are never followed and
		// stay unconstrained.
		var owners []int32
		for s := 0; s < p.NumStates; s++ {
			if col := i - int(p.Base[s]); col >= 0 && col < p.NumCols {
				owners = append(owners, int32(s)+1)
			}
		}
		check := int32(0)
		if len(owners) > 0 && r.Intn(p.NumStates+1) != 0 {
			check = owners[r.Intn(len(owners))]
		}
		a := lr.MkAction(lr.Kind(r.Intn(4)), r.Intn(1<<14))
		if check != 0 {
			switch a.Kind() {
			case lr.Shift:
				a = lr.MkAction(lr.Shift, r.Intn(p.NumStates))
			case lr.Reduce:
				if len(g.Prods) == 0 {
					a = lr.MkAction(lr.Error, a.Target())
				} else {
					a = lr.MkAction(lr.Reduce, r.Intn(len(g.Prods)))
				}
			}
		}
		p.Data = append(p.Data, a)
		p.Check = append(p.Check, check)
	}
	return reflect.ValueOf(randModule{&tables.Module{Grammar: g, Packed: p}})
}

// TestRoundTripProperty is the encode→decode→encode property over
// generated modules: re-encoding a decoded module must reproduce the
// original byte stream exactly, and the decoded packed table must
// answer every (state, symbol) lookup identically to the original.
func TestRoundTripProperty(t *testing.T) {
	prop := func(rm randModule) bool {
		var first bytes.Buffer
		if _, err := tables.EncodeModule(&first, rm.m); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		decoded, err := tables.Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		var second bytes.Buffer
		if _, err := tables.EncodeModule(&second, decoded); err != nil {
			t.Logf("re-encode: %v", err)
			return false
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Logf("re-encoding is not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
			return false
		}
		for state := 0; state < rm.m.Packed.NumStates; state++ {
			for sym := 0; sym < len(rm.m.Packed.ColOf); sym++ {
				if decoded.Packed.Lookup(state, sym) != rm.m.Packed.Lookup(state, sym) {
					t.Logf("action (%d,%d) changed across the round trip", state, sym)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripAmdahl runs the same property over the real full-scale
// module, and additionally re-encodes through Encode's own path so the
// section sizes agree between the two passes.
func TestRoundTripAmdahl(t *testing.T) {
	cg := buildFrom(t, "amdahl470.cogg", specs.Amdahl470)
	var first bytes.Buffer
	sz1, err := cg.Encode(&first)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := tables.Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	sz2, err := tables.EncodeModule(&second, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encoding the decoded amdahl470 module is not byte-identical (%d vs %d bytes)",
			first.Len(), second.Len())
	}
	if sz1.Symbols != sz2.Symbols || sz1.Templates != sz2.Templates ||
		sz1.Compressed != sz2.Compressed || sz1.Total != sz2.Total {
		t.Errorf("section sizes drifted across the round trip: %+v vs %+v", sz1, sz2)
	}
	for state := 0; state < cg.Packed.NumStates; state++ {
		for sym := 0; sym < len(cg.Packed.ColOf); sym++ {
			if got, want := decoded.Packed.Lookup(state, sym), cg.Packed.Lookup(state, sym); got != want {
				t.Fatalf("action (%d,%d): decoded %v, original %v", state, sym, got, want)
			}
		}
	}
}
