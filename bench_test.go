// Package bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
// paper-vs-measured numbers):
//
//	E1 BenchmarkTable1GrammarStatistics  — Table 1
//	E2 BenchmarkTable2ObjectSizes        — Table 2
//	E3 BenchmarkAppendix1Expression      — Appendix 1, program 1
//	E4 BenchmarkAppendix1Branches        — Appendix 1, program 2
//	E5 BenchmarkGrammarComplexitySweep   — section 5/6 size-control claim
//	E6 BenchmarkComponentSizes           — section 6 lines-of-code claim
//	E7 BenchmarkBranchRelaxation         — section 4.2 span-dependent branches
//	E8 BenchmarkTableConstruction, BenchmarkCodeGenerationRate — throughput
//	E9 BenchmarkCompressionAblation      — dense vs comb vs row-merged tables
//	E10 BenchmarkBatchThroughput         — batch service: worker scaling,
//	                                       cold vs. warm table-module cache
//
// Run with: go test -bench=. -benchmem
package cogg_test

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cogg/internal/batch"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/obs"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/internal/tables"
	"cogg/specs"

	amdahl470emitted "cogg/internal/emitted/amdahl470"
)

var (
	tgtOnce sync.Once
	tgt     *driver.Target
	tgtErr  error
)

func fullTarget(b *testing.B) *driver.Target {
	b.Helper()
	tgtOnce.Do(func() { tgt, tgtErr = driver.NewTarget("amdahl470.cogg", specs.Amdahl470) })
	if tgtErr != nil {
		b.Fatal(tgtErr)
	}
	return tgt
}

// --- E1: Table 1 -----------------------------------------------------------

// BenchmarkTable1GrammarStatistics constructs the full Amdahl 470 tables
// and reports the nine rows of Table 1 as metrics. Paper values:
// symbols 247, X-dim 87, states 810, entries 70470, significant 30366,
// productions 248, templates 578, production operators 68, semantic 28.
func BenchmarkTable1GrammarStatistics(b *testing.B) {
	var cg *core.CodeGenerator
	for i := 0; i < b.N; i++ {
		var err error
		cg, err = core.Generate("amdahl470.cogg", specs.Amdahl470)
		if err != nil {
			b.Fatal(err)
		}
	}
	s := cg.ComputeStats()
	b.ReportMetric(float64(s.SymbolsDeclared), "i_symbols")
	b.ReportMetric(float64(s.ParseSymbols), "ii_xdim")
	b.ReportMetric(float64(s.States), "iii_states")
	b.ReportMetric(float64(s.Entries), "iv_entries")
	b.ReportMetric(float64(s.SignificantEntries), "v_significant")
	b.ReportMetric(float64(s.Productions), "vi_productions")
	b.ReportMetric(float64(s.Templates), "vii_templates")
	b.ReportMetric(float64(s.ProductionOps), "viii_prodops")
	b.ReportMetric(float64(s.SemanticOps), "ix_semops")
}

// --- E2: Table 2 -----------------------------------------------------------

// BenchmarkTable2ObjectSizes reports artifact sizes in 4096-byte pages.
// Paper values: template array 8.5, compressed table 32.7, uncompressed
// 71.5, code generation routines 7.5; PascalVS translation routines 41.9.
// Serialized artifact bytes stand in for object module sizes; the
// routine rows are measured as Go source bytes of the corresponding
// packages (see DESIGN.md's substitution table).
func BenchmarkTable2ObjectSizes(b *testing.B) {
	var sz tables.SectionSizes
	for i := 0; i < b.N; i++ {
		cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
		if err != nil {
			b.Fatal(err)
		}
		sz, err = cg.Sizes()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tables.Pages(sz.Templates), "i_templates_pages")
	b.ReportMetric(tables.Pages(sz.Compressed), "ii_compressed_pages")
	b.ReportMetric(tables.Pages(sz.Uncompressed), "iii_uncompressed_pages")

	routines, err := sourceBytes("internal/codegen", "internal/regalloc",
		"internal/labels", "internal/cse", "internal/loader")
	if err != nil {
		b.Fatal(err)
	}
	baseline, err := sourceBytes("internal/handwritten")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tables.Pages(routines), "iv_codegen_routines_pages")
	b.ReportMetric(tables.Pages(baseline), "v_handwritten_pages")
}

// --- E3/E4: Appendix 1 -----------------------------------------------------

const appendix1Program1 = `
program appendix1;
var a, b, c, d, e, f, g, h, x: array[0..24] of integer;
    i, j, k, l, m, n, o, p, q: integer;
begin
  x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
end.
`

const appendix1Program2 = `
program appendix2;
var i, j, k, p, q: integer;
    flag: boolean;
    z: -32000..32000;
begin
  if flag then i := j - 1
          else i := z;
  if p < q then k := z
end.
`

// appendixCompare compiles a program with both generators and reports
// the Appendix 1 comparison: instruction counts and code bytes. The
// paper's program 1 columns: CoGG 31 instructions, PascalVS 28.
func appendixCompare(b *testing.B, name, src string) {
	var tdCount, hwCount, tdBytes, hwBytes int
	for i := 0; i < b.N; i++ {
		prog, err := pascal.Parse(name, src)
		if err != nil {
			b.Fatal(err)
		}
		shaped, err := shaper.Shape(prog, shaper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		td, err := fullTarget(b).CompileShaped(prog, shaped)
		if err != nil {
			b.Fatal(err)
		}
		prog2, _ := pascal.Parse(name, src)
		shaped2, err := shaper.Shape(prog2, shaper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		hw, err := driver.CompileHandwritten(shaped2, fullTarget(b).Machine)
		if err != nil {
			b.Fatal(err)
		}
		tdCount, hwCount = td.Prog.InstructionCount(), hw.Prog.InstructionCount()
		tdBytes, hwBytes = td.Prog.CodeSize, hw.Prog.CodeSize
	}
	b.ReportMetric(float64(tdCount), "cogg_instructions")
	b.ReportMetric(float64(hwCount), "handwritten_instructions")
	b.ReportMetric(float64(tdBytes), "cogg_bytes")
	b.ReportMetric(float64(hwBytes), "handwritten_bytes")
	b.ReportMetric(float64(tdCount)/float64(hwCount), "ratio")
}

func BenchmarkAppendix1Expression(b *testing.B) {
	appendixCompare(b, "appendix1.pas", appendix1Program1)
}

func BenchmarkAppendix1Branches(b *testing.B) {
	appendixCompare(b, "appendix2.pas", appendix1Program2)
}

// --- E5: grammar complexity sweep -------------------------------------------

// sweepWorkload exercises loads, stores, addressing, arithmetic, and
// control flow — the constructs whose productions the sweep removes.
const sweepWorkload = `
program sweep;
var a: array[1..20] of integer;
    i, j, s, t: integer;
begin
  for i := 1 to 20 do a[i] := i * 3;
  s := 0; t := 1;
  for i := 1 to 20 do
  begin
    j := a[i] + i;
    s := s + j * 2 - a[i] div 3;
    if s > 100 then t := t + 1
  end
end.
`

// BenchmarkGrammarComplexitySweep compiles the same program under the
// minimal and full specifications: more productions mean larger tables
// and better code ("a language implementer can therefore control the
// size of the compiler by changing the complexity of the grammar",
// section 6; "no less than thirteen productions associated with integer
// addition", section 5).
func BenchmarkGrammarComplexitySweep(b *testing.B) {
	for _, tc := range []struct {
		name, specName, src string
	}{
		{"minimal", "amdahl-minimal.cogg", specs.AmdahlMinimal},
		{"full", "amdahl470.cogg", specs.Amdahl470},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var instr, states int
			var pages float64
			for i := 0; i < b.N; i++ {
				t, err := driver.NewTarget(tc.specName, tc.src)
				if err != nil {
					b.Fatal(err)
				}
				sz, err := t.CG.Sizes()
				if err != nil {
					b.Fatal(err)
				}
				c, err := t.Compile("sweep.pas", sweepWorkload, shaper.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(nil, 1_000_000); err != nil {
					b.Fatal(err)
				}
				instr = c.Prog.InstructionCount()
				states = t.CG.Table.NumStates
				pages = tables.Pages(sz.Compressed)
			}
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(pages, "table_pages")
			b.ReportMetric(float64(instr), "emitted_instructions")
		})
	}
}

// --- E6: component sizes ------------------------------------------------------

// BenchmarkComponentSizes reports source lines per component role,
// mirroring the section 6 comparison: CoGG under 3000 lines, the
// generated code generator under 2500, against a 5000-line hand-written
// generator it replaced.
func BenchmarkComponentSizes(b *testing.B) {
	roles := []struct {
		name string
		dirs []string
	}{
		{"cogg_loc", []string{"internal/spec", "internal/grammar", "internal/lr", "internal/tables", "internal/core"}},
		{"generated_runtime_loc", []string{"internal/codegen", "internal/regalloc", "internal/labels", "internal/cse", "internal/loader"}},
		{"handwritten_loc", []string{"internal/handwritten"}},
		{"spec_lines", []string{"specs"}},
	}
	var lines [4]int
	for i := 0; i < b.N; i++ {
		for r, role := range roles {
			n := 0
			for _, d := range role.dirs {
				c, err := sourceLines(d)
				if err != nil {
					b.Fatal(err)
				}
				n += c
			}
			lines[r] = n
		}
	}
	for r, role := range roles {
		b.ReportMetric(float64(lines[r]), role.name)
	}
}

// --- E7: span-dependent branches ---------------------------------------------

// BenchmarkBranchRelaxation generates programs of growing size: once
// branch targets fall beyond the 4096-byte reach of the code base
// register, the long form (load target address, branch via register)
// appears, resolved by the fixpoint of section 4.2.
func BenchmarkBranchRelaxation(b *testing.B) {
	for _, blocks := range []int{20, 80, 200, 400} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			src := synthBranches(blocks)
			var long, size int
			for i := 0; i < b.N; i++ {
				c, err := fullTarget(b).Compile("synth.pas", src, shaper.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(nil, 10_000_000); err != nil {
					b.Fatal(err)
				}
				long = longBranches(c)
				size = c.Prog.CodeSize
			}
			b.ReportMetric(float64(size), "code_bytes")
			b.ReportMetric(float64(long), "long_branches")
		})
	}
}

func synthBranches(blocks int) string {
	var sb strings.Builder
	sb.WriteString("program synth;\nvar x, y: integer;\nbegin\n  x := 0; y := 1;\n")
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&sb, "  if y > %d then begin x := x + %d; y := y + x end\n", i%7, i+1)
		if i < blocks-1 {
			sb.WriteString("  ;\n")
		}
	}
	sb.WriteString("end.\n")
	return sb.String()
}

func longBranches(c *driver.Compiled) int {
	n := 0
	for i := range c.Prog.Instrs {
		if c.Prog.Instrs[i].Long {
			n++
		}
	}
	return n
}

// --- E8: throughput -----------------------------------------------------------

func BenchmarkTableConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate("amdahl470.cogg", specs.Amdahl470); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodeGenerationRate drives the steady-state emission hot
// path: one reusable Session, so after warm-up each translation costs
// zero heap allocations (gated by TestZeroAllocSteadyState* in package
// codegen and by allocs/op here).
func BenchmarkCodeGenerationRate(b *testing.B) {
	t := fullTarget(b)
	prog, err := pascal.Parse("sweep.pas", sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{StatementRecords: true})
	if err != nil {
		b.Fatal(err)
	}
	toks := shaped.Linearize()
	sess, err := t.Gen.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	var instrs int
	for i := 0; i < 3; i++ { // warm the session's buffers
		p, _, err := sess.Generate("sweep", toks)
		if err != nil {
			b.Fatal(err)
		}
		instrs = p.InstructionCount()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.Generate("sweep", toks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(toks))*float64(b.N)/b.Elapsed().Seconds(), "IF_tokens/s")
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkCodeGenerationRateEmitted is BenchmarkCodeGenerationRate on
// the `cogg emit-go` engine: the same spec lowered to specialized Go
// (switch-threaded parser, reduction sites inlined as straight-line
// code) instead of interpreted tables. Output is byte-identical — the
// differential suite in internal/emitgo pins that — so the ns/op gap
// between this and the interpreted benchmark is pure dispatch overhead.
// The baseline gates it at 0 allocs/op with ns/op strictly below the
// interpreted entry.
func BenchmarkCodeGenerationRateEmitted(b *testing.B) {
	eng, err := amdahl470emitted.New(rt370.Config())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pascal.Parse("sweep.pas", sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{StatementRecords: true})
	if err != nil {
		b.Fatal(err)
	}
	toks := shaped.Linearize()
	sess, err := eng.NewEngineSession()
	if err != nil {
		b.Fatal(err)
	}
	var instrs int
	for i := 0; i < 3; i++ { // warm the session's buffers
		p, _, err := sess.Generate("sweep", toks)
		if err != nil {
			b.Fatal(err)
		}
		instrs = p.InstructionCount()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.Generate("sweep", toks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(toks))*float64(b.N)/b.Elapsed().Seconds(), "IF_tokens/s")
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instructions/s")
}

// BenchmarkCodeGenerationRateObserved is BenchmarkCodeGenerationRate
// with the full metrics instrumentation live — per-phase latency
// histograms, per-production reduce counters, register-pressure stats —
// proving observability costs the hot path no allocations (allocs/op
// must stay 0, gated by the benchmark baseline) and only a small
// constant time overhead.
func BenchmarkCodeGenerationRateObserved(b *testing.B) {
	reg := obs.NewRegistry()
	cfg := rt370.Config()
	cfg.Metrics = codegen.NewMetrics(reg, "amdahl470.cogg")
	t, err := driver.NewTargetWithConfig("amdahl470.cogg", specs.Amdahl470, cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pascal.Parse("sweep.pas", sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{StatementRecords: true})
	if err != nil {
		b.Fatal(err)
	}
	toks := shaped.Linearize()
	sess, err := t.Gen.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	var instrs int
	for i := 0; i < 3; i++ { // warm the session's buffers
		p, _, err := sess.Generate("sweep", toks)
		if err != nil {
			b.Fatal(err)
		}
		instrs = p.InstructionCount()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.Generate("sweep", toks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(toks))*float64(b.N)/b.Elapsed().Seconds(), "IF_tokens/s")
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instructions/s")
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		b.Fatal(err)
	}
	if err := obs.LintExposition(sb.String()); err != nil {
		b.Fatalf("registry exposition invalid after load: %v", err)
	}
}

func BenchmarkCSEEffect(b *testing.B) {
	src := `
program csebench;
var a, b, c, x, y, z: integer;
begin
  a := 3; b := 11; c := 7;
  x := a*b + b*c;
  y := a*b - b*c;
  z := a*b * 2
end.
`
	var with, without int
	for i := 0; i < b.N; i++ {
		plain, err := fullTarget(b).Compile("cse.pas", src, shaper.Options{})
		if err != nil {
			b.Fatal(err)
		}
		opt, err := fullTarget(b).Compile("cse.pas", src, shaper.Options{CSE: ifopt.New().Apply})
		if err != nil {
			b.Fatal(err)
		}
		without, with = plain.Prog.InstructionCount(), opt.Prog.InstructionCount()
	}
	b.ReportMetric(float64(without), "instructions_plain")
	b.ReportMetric(float64(with), "instructions_cse")
}

// --- E10: batch throughput -----------------------------------------------------

// batchWorkload is sixteen distinct programs: the differential corpus
// shapes scaled into a batch.
func batchWorkload() []batch.Unit {
	var units []batch.Unit
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("u%d", i)
		src := fmt.Sprintf(`
program %s;
var a: array[1..20] of integer;
    i, j, s: integer;
begin
  for i := 1 to 20 do a[i] := i * %d;
  s := 0;
  for i := 1 to 20 do
  begin
    j := a[i] + i * %d;
    s := s + j * 2 - a[i] div 3;
    if s > %d then s := s - 1
  end
end.
`, name, i+2, i+1, 50+i)
		units = append(units, batch.Unit{Name: name + ".pas", Source: src,
			Opt: shaper.Options{StatementRecords: true}})
	}
	return units
}

// BenchmarkBatchThroughput measures the batch compilation service end
// to end: load the amdahl470 tables (cold = build from specification
// source and populate the cache; warm = decode the on-disk module,
// skipping SLR construction) and compile sixteen programs on 1/4/8
// workers. The table_load_ms metric is the cold-vs-warm headline: warm
// must beat cold by well over 5x since decoding replaces automaton
// construction.
func BenchmarkBatchThroughput(b *testing.B) {
	units := batchWorkload()
	for _, mode := range []string{"cold", "warm"} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("cache=%s/workers=%d", mode, workers), func(b *testing.B) {
				dir := b.TempDir()
				if mode == "warm" {
					seed := batch.New(batch.Options{CacheDir: dir})
					if _, err := seed.Module("amdahl470.cogg", specs.Amdahl470); err != nil {
						b.Fatal(err)
					}
				}
				var loadNS, unitsDone int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					svc := batch.New(batch.Options{CacheDir: dir, Workers: workers})
					start := time.Now()
					tgt, err := svc.Target("amdahl470.cogg", specs.Amdahl470, rt370.Config())
					if err != nil {
						b.Fatal(err)
					}
					loadNS += int64(time.Since(start))
					if mode == "cold" {
						// Cold means cold every iteration: drop the
						// on-disk module so the next run rebuilds.
						b.StopTimer()
						os.RemoveAll(dir)
						b.StartTimer()
					}
					for _, r := range svc.CompileBatch(tgt, units) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
					unitsDone += int64(len(units))
				}
				b.ReportMetric(float64(loadNS)/float64(b.N)/1e6, "table_load_ms")
				b.ReportMetric(float64(unitsDone)/b.Elapsed().Seconds(), "units/s")
			})
		}
	}
}

// --- helpers -------------------------------------------------------------------

func sourceBytes(dirs ...string) (int, error) {
	total := 0
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += int(info.Size())
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

func sourceLines(dir string) (int, error) {
	total := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if !strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, ".cogg") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		total += strings.Count(string(data), "\n")
		return nil
	})
	return total, err
}

// BenchmarkCompressionAblation compares three table representations:
// the dense matrix, the paper's row-displacement comb, and comb after
// merging identical rows. The last is a measured negative result — LR
// action rows embed state-specific shift targets, so unique_rows equals
// the state count and the row index only adds pages. Default reductions
// would help but would emit templates before detecting an error,
// breaking the scheme's correctness guarantee; the comb is the honest
// floor.
//
// The sizes sub-benchmark measures space; the dispatch sub-benchmarks
// measure the time half of the trade: the same translation driven
// through the comb's Base/Check/Data indirection versus the dense
// matrix's direct indexing (Module.Dense), pricing what the paper's
// compression costs at generation time.
func BenchmarkCompressionAblation(b *testing.B) {
	b.Run("sizes", func(b *testing.B) {
		var dense, comb, dedup float64
		var uniques int
		for i := 0; i < b.N; i++ {
			cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
			if err != nil {
				b.Fatal(err)
			}
			dense = tables.Pages(tables.UncompressedSizeBytes(cg.Table))
			comb = tables.Pages(tables.Pack(cg.Table).SizeBytes())
			d := tables.PackDedup(cg.Table)
			dedup = tables.Pages(d.SizeBytes())
			uniques = d.UniqueRows()
		}
		b.ReportMetric(dense, "dense_pages")
		b.ReportMetric(comb, "comb_pages")
		b.ReportMetric(dedup, "dedup_pages")
		b.ReportMetric(float64(uniques), "unique_rows")
	})

	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pascal.Parse("sweep.pas", sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{StatementRecords: true})
	if err != nil {
		b.Fatal(err)
	}
	toks := shaped.Linearize()
	for _, tc := range []struct {
		name  string
		dense bool
	}{{"dispatch=comb", false}, {"dispatch=dense", true}} {
		b.Run(tc.name, func(b *testing.B) {
			mod := cg.Module()
			if tc.dense {
				mod.Dense = cg.Table
			}
			gen, err := codegen.New(mod, rt370.Config())
			if err != nil {
				b.Fatal(err)
			}
			sess, err := gen.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, _, err := sess.Generate("sweep", toks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Generate("sweep", toks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(toks))*float64(b.N)/b.Elapsed().Seconds(), "IF_tokens/s")
		})
	}
}
