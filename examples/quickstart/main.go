// Quickstart: write a five-production code generator specification, run
// CoGG over it, and translate the paper's introductory example
//
//	A := A + B;
//
// whose intermediate form is
//
//	store(word(d.a), iadd(word(d.a), word(d.b)))
//
// linearized to prefix order for the skeletal parser.
package main

import (
	"fmt"
	"log"

	"cogg/internal/asm"
	"cogg/internal/driver"
	"cogg/internal/ir"
	"cogg/internal/labels"
)

// The specification: a declaration section (five symbol classes) and a
// production section pairing IF shapes with instruction templates.
const spec = `
$Non-terminals
 r = register
$Terminals
 dsp = displacement
$Operators
 fullword, iadd, assign
$Opcodes
 l, a, ar, st
$Constants
 using, modifies
 zero = 0
$Productions
r.2 ::= fullword dsp.1 r.1
 using r.2
 l r.2,dsp.1(zero,r.1)

r.1 ::= iadd r.1 r.2
 modifies r.1
 ar r.1,r.2

r.2 ::= iadd r.2 fullword dsp.1 r.1
 modifies r.2
 a r.2,dsp.1(zero,r.1)

lambda ::= assign fullword dsp.1 r.1 r.2
 st r.2,dsp.1(zero,r.1)
`

func main() {
	// CoGG: specification in, table-driven code generator out.
	tgt, err := driver.NewTarget("quickstart.cogg", spec)
	if err != nil {
		log.Fatal(err)
	}
	stats := tgt.CG.ComputeStats()
	fmt.Printf("built tables: %d productions, %d states, %d significant entries\n\n",
		stats.Productions, stats.States, stats.SignificantEntries)

	// The IF for A := A + B (A at displacement 100, B at 104, both
	// addressed from the data base register r13).
	toks, err := ir.ParseTokens(
		"assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intermediate form:", ir.FormatTokens(toks))

	prog, res, err := tgt.Gen.Generate("QUICK", toks)
	if err != nil {
		log.Fatal(err)
	}
	if err := labels.Layout(prog, tgt.Machine); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", asm.Listing(prog, tgt.Machine))
	fmt.Printf("%d reductions drove %d instructions.\n", res.Reductions, prog.InstructionCount())
	fmt.Println("\nNote the add came from the five-symbol production (maximal munch):")
	fmt.Println("the ambiguous grammar let the parser fold the memory operand into A.")
}
