// Appendix 1: the paper's side-by-side code comparison, regenerated.
// The same shaped intermediate form for
//
//	x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
//
// is translated by the CoGG-generated code generator (left) and the
// hand-written baseline (right), echoing the paper's CoGG/PascalVS
// columns: same idioms (SLA scaling, indexed RX operands, SRDA/DR
// division, MR multiplication), comparable instruction counts.
package main

import (
	"fmt"
	"log"
	"strings"

	"cogg/internal/driver"
	"cogg/internal/pascal"
	"cogg/internal/shaper"
	"cogg/specs"
)

const program = `
program appendix1;
var a, b, c, d, e, f, g, h, x: array[0..24] of integer;
    i, j, k, l, m, n, o, p, q: integer;
begin
  x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
end.
`

func main() {
	tgt, err := driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pascal.Parse("appendix1.pas", program)
	if err != nil {
		log.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cogg, err := tgt.CompileShaped(prog, shaped)
	if err != nil {
		log.Fatal(err)
	}

	prog2, _ := pascal.Parse("appendix1.pas", program)
	shaped2, err := shaper.Shape(prog2, shaper.Options{})
	if err != nil {
		log.Fatal(err)
	}
	hand, err := driver.CompileHandwritten(shaped2, tgt.Machine)
	if err != nil {
		log.Fatal(err)
	}

	left := bodyLines(cogg.Listing())
	right := bodyLines(hand.Listing())
	fmt.Println("x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]")
	fmt.Println()
	fmt.Printf("%-40s %s\n", "CoGG", "hand written")
	fmt.Printf("%-40s %s\n", strings.Repeat("-", 30), strings.Repeat("-", 30))
	for i := 0; i < len(left) || i < len(right); i++ {
		l, r := "", ""
		if i < len(left) {
			l = left[i]
		}
		if i < len(right) {
			r = right[i]
		}
		fmt.Printf("%-40s %s\n", l, r)
	}
	fmt.Printf("\n%d vs %d instructions, %d vs %d bytes (paper: CoGG 31, PascalVS 28)\n",
		cogg.Prog.InstructionCount(), hand.Prog.InstructionCount(),
		cogg.Prog.CodeSize, hand.Prog.CodeSize)

	// Both must compute the same thing; run them with the operands the
	// test suite uses (array elements poked directly into storage).
	for name, c := range map[string]*driver.Compiled{"CoGG": cogg, "hand": hand} {
		cpu, err := c.NewCPU()
		if err != nil {
			log.Fatal(err)
		}
		for v, val := range map[string]int32{
			"i": 1, "j": 2, "k": 3, "l": 4, "m": 5, "n": 6, "o": 7, "p": 8, "q": 9,
		} {
			addr, _ := c.VarAddr(v)
			cpu.SetWord(addr, val)
		}
		for arr, elem := range map[string][2]int32{
			"a": {1, 100}, "b": {2, 3}, "c": {3, 50}, "d": {4, 8},
			"e": {5, 90}, "f": {6, 4}, "g": {7, 5}, "h": {8, 11},
		} {
			base, _ := c.VarAddr(arr)
			cpu.SetWord(base+uint32(4*elem[0]), elem[1])
		}
		if err := cpu.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		base, _ := c.VarAddr("x")
		v, _ := cpu.Word(base + 9*4)
		fmt.Printf("%s executes: x[9] = %d  (100 + 3*42 + (90 div 9)*11 = 336)\n", name, v)
	}
}

// bodyLines strips the header and addresses, keeping the instructions.
func bodyLines(listing string) []string {
	var out []string
	for _, line := range strings.Split(listing, "\n") {
		f := strings.Fields(line)
		if len(f) < 2 || strings.HasPrefix(line, "*") || strings.HasSuffix(f[0], ":") {
			continue
		}
		out = append(out, strings.Join(f[1:], " "))
	}
	return out
}
