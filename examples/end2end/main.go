// End to end: compile a complete Pascal program — procedures, loops,
// arrays, a case statement — with the code generator produced from the
// full Amdahl 470 specification, then execute the object deck on the
// S/370 simulator and read the results out of storage.
package main

import (
	"fmt"
	"log"

	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/shaper"
	"cogg/specs"
)

const program = `
program sieve;
var isprime: array[2..50] of 0..1;
    i, j, count, largest, class2, class3, classbig: integer;

function square(n: integer): integer;
begin
  square := n * n
end;

begin
  for i := 2 to 50 do isprime[i] := 1;
  i := 2;
  while square(i) <= 50 do
  begin
    if isprime[i] = 1 then
    begin
      j := square(i);
      while j <= 50 do
      begin
        isprime[j] := 0;
        j := j + i
      end
    end;
    i := i + 1
  end;
  count := 0; largest := 0;
  class2 := 0; class3 := 0; classbig := 0;
  for i := 2 to 50 do
    if isprime[i] = 1 then
    begin
      count := count + 1;
      largest := i;
      writeln(i);
      case i mod 4 of
        1: class2 := class2 + 1;
        2, 3: class3 := class3 + 1
      else classbig := classbig + 1
      end
    end
end.
`

func main() {
	tgt, err := driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}
	c, err := tgt.Compile("sieve.pas", program, shaper.Options{
		StatementRecords: true,
		CSE:              ifopt.New().Apply,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d IF tokens -> %d reductions -> %d instructions (%d bytes)\n",
		len(c.Tokens), c.Result.Reductions, c.Prog.InstructionCount(), c.Prog.CodeSize)

	cpu, err := c.Run(nil, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d simulated instructions\n\n", cpu.Steps)
	fmt.Print("primes:")
	for _, v := range driver.Output(cpu) {
		fmt.Printf(" %d", v)
	}
	fmt.Println()
	for _, v := range []string{"count", "largest", "class2", "class3", "classbig"} {
		val, err := driver.Word(cpu, c, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s = %d\n", v, val)
	}
	fmt.Println("\n(15 primes up to 50; the largest is 47.)")
}
