// Machine idioms: how the semantic operators of section 4 reach beyond a
// pure string-to-string translation. The even/odd register pair of
// integer multiplication and division (push_odd/push_even/ignore_lhs),
// the BCTR decrement idiom, and common subexpressions (make_common /
// use_common / modifies) all appear in one small program.
package main

import (
	"fmt"
	"log"

	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/shaper"
	"cogg/specs"
)

const program = `
program idioms;
var a, b, q, r, p, c1, c2: integer;
begin
  a := 1234; b := 17;
  q := a div b;        { SRDA/DR: quotient lands in the odd register  }
  r := a mod b;        { same sequence, push_even keeps the remainder }
  p := q * r;          { MR: product in the even/odd pair             }
  b := b - 1;          { BCTR decrement idiom                         }
  c1 := a*b + 1;       { a*b is a common subexpression...             }
  c2 := a*b - 1        { ...reused from its register                  }
end.
`

func main() {
	tgt, err := driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}

	plain, err := tgt.Compile("idioms.pas", program, shaper.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cse, err := tgt.Compile("idioms.pas", program, shaper.Options{CSE: ifopt.New().Apply})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== intermediate form (with the IF optimizer) ===")
	fmt.Println(ir.FormatTokens(cse.Tokens))
	fmt.Println("\n=== generated code ===")
	fmt.Print(cse.Listing())

	fmt.Printf("\nwithout CSE: %d instructions;  with CSE: %d instructions\n",
		plain.Prog.InstructionCount(), cse.Prog.InstructionCount())

	cpu, err := cse.Run(nil, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []string{"q", "r", "p", "c1", "c2"} {
		val, _ := driver.Word(cpu, cse, v)
		fmt.Printf("  %-2s = %d\n", v, val)
	}
}
