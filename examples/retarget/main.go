// Retargeting: the same Pascal program compiled twice from the same
// intermediate form — once with the Amdahl 470 specification, once with
// the risc32 specification. "Retargetting the code generator merely
// requires a rewriting of the templates associated with productions and
// minor modifications of the routines which actually emit the machine
// instructions" (paper section 6).
package main

import (
	"fmt"
	"log"

	"cogg/internal/driver"
	"cogg/internal/shaper"
	"cogg/specs"
)

const program = `
program gcd;
var a, b, t, result: integer;
begin
  a := 1071; b := 462;
  while b > 0 do
  begin
    t := a mod b;
    a := b;
    b := t
  end;
  result := a
end.
`

func main() {
	s370, err := driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}
	risc, err := driver.NewTargetWithConfig("risc32.cogg", specs.Risc32, driver.RiscConfig())
	if err != nil {
		log.Fatal(err)
	}

	cs, err := s370.Compile("gcd.pas", program, shaper.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cr, err := risc.Compile("gcd.pas", program, shaper.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Amdahl 470 (S/370) ===")
	fmt.Print(cs.Listing())
	fmt.Println("\n=== risc32 ===")
	fmt.Print(cr.Listing())

	fmt.Printf("\nS/370:  %3d instructions, %4d bytes (even/odd pair division idiom)\n",
		cs.Prog.InstructionCount(), cs.Prog.CodeSize)
	fmt.Printf("risc32: %3d instructions, %4d bytes (three-operand rem instruction)\n",
		cr.Prog.InstructionCount(), cr.Prog.CodeSize)

	// Only the S/370 side has a simulator; run it to confirm semantics.
	cpu, err := cs.Run(nil, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := driver.Word(cpu, cs, "result")
	fmt.Printf("\ngcd(1071, 462) computed on the simulator: %d\n", got)
}
