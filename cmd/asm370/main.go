// Command asm370 assembles S/370 text into machine code and back: the
// scratch tool for working on templates and runtime stubs.
//
// Usage:
//
//	asm370 [-d] [file]
//
// Without -d, assembly text (one instruction per line, listing syntax)
// is read from the file or standard input and the encoding printed as
// hex alongside each instruction. With -d, hex bytes are read instead
// and disassembled.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cogg/internal/s370"
)

func main() {
	dis := flag.Bool("d", false, "disassemble hex input")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	if *dis {
		clean := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == '\t' {
				return -1
			}
			return r
		}, string(src))
		code, err := hex.DecodeString(clean)
		if err != nil {
			fatal(err)
		}
		m := s370.NewMachine(0)
		fmt.Print(s370.DisassembleAll(m, code, 0))
		return
	}

	instrs, err := s370.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	m := s370.NewMachine(0)
	for i := range instrs {
		b, err := m.Encode(nil, &instrs[i])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14X %s\n", b, m.Format(&instrs[i]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm370:", err)
	os.Exit(1)
}
