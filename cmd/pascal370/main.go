// Command pascal370 is the complete compiler: Pascal source through the
// shaper, the IF optimizer, and the table-driven code generator to an
// S/370 object deck, optionally executed on the simulator.
//
// Usage:
//
//	pascal370 [flags] program.pas
//
//	-spec NAME   code generator specification (amdahl470, amdahl-minimal,
//	             or a file path; default amdahl470)
//	-S           print the assembly listing
//	-if          print the linearized intermediate form
//	-cse         run the IF optimizer (common subexpressions)
//	-checks      emit subscript checks
//	-deck FILE   write the object deck (80-column loader records)
//	-run         execute on the simulator
//	-set n=v     initialize variable n before running (repeatable)
//	-print a,b   print listed variables after the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/s370"
	"cogg/internal/shaper"
	"cogg/specs"
)

type setFlags map[string]int32

func (s setFlags) String() string { return "" }

func (s setFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", v)
	}
	n, err := strconv.ParseInt(val, 10, 32)
	if err != nil {
		return err
	}
	s[name] = int32(n)
	return nil
}

func main() {
	specName := flag.String("spec", "amdahl470", "code generator specification")
	listing := flag.Bool("S", false, "print the assembly listing")
	showIF := flag.Bool("if", false, "print the linearized intermediate form")
	cse := flag.Bool("cse", false, "run the IF optimizer")
	checks := flag.Bool("checks", false, "emit subscript checks")
	uninit := flag.Bool("uninit", false, "abort on reads of uninitialized integers")
	deck := flag.String("deck", "", "write the object deck to this file")
	dis := flag.Bool("dis", false, "disassemble the object text (verifies the encoder)")
	run := flag.Bool("run", false, "execute on the simulator")
	printVars := flag.String("print", "", "comma separated variables to print after -run")
	inits := setFlags{}
	flag.Var(inits, "set", "initialize a variable: name=value")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pascal370 [flags] program.pas")
		os.Exit(2)
	}
	srcFile := flag.Arg(0)
	src, err := os.ReadFile(srcFile)
	if err != nil {
		fatal(err)
	}

	sName, sSrc, err := loadSpec(*specName)
	if err != nil {
		fatal(err)
	}
	tgt, err := driver.NewTarget(sName, sSrc)
	if err != nil {
		fatal(err)
	}
	opt := shaper.Options{StatementRecords: true, SubscriptChecks: *checks, UninitChecks: *uninit}
	if *cse {
		opt.CSE = ifopt.New().Apply
	}
	c, err := tgt.Compile(srcFile, string(src), opt)
	if err != nil {
		fatal(err)
	}

	if *showIF {
		fmt.Println(ir.FormatTokens(c.Tokens))
	}
	if *listing {
		fmt.Print(c.Listing())
	}
	fmt.Printf("%s: %d IF tokens, %d reductions, %d instructions, %d code bytes\n",
		srcFile, len(c.Tokens), c.Result.Reductions,
		c.Prog.InstructionCount(), c.Prog.CodeSize)

	if *dis {
		m, ok := tgt.Machine.(*s370.Machine)
		if !ok {
			fatal(fmt.Errorf("-dis supports the s370 target only"))
		}
		for _, txt := range c.Deck.Texts {
			if txt.Addr >= c.Prog.Origin && txt.Addr < c.Prog.Origin+c.Prog.CodeSize {
				fmt.Print(s370.DisassembleAll(m, txt.Data, txt.Addr))
			}
		}
	}
	if *deck != "" {
		f, err := os.Create(*deck)
		if err != nil {
			fatal(err)
		}
		if err := c.Deck.WriteCards(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d text bytes\n", *deck, c.Deck.TotalTextBytes())
	}
	if *run {
		cpu, err := c.Run(inits, 50_000_000)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions\n", cpu.Steps)
		if out := driver.Output(cpu); len(out) > 0 {
			fmt.Print("output:")
			for _, v := range out {
				fmt.Printf(" %d", v)
			}
			fmt.Println()
		}
		if *printVars != "" {
			for _, name := range strings.Split(*printVars, ",") {
				name = strings.TrimSpace(name)
				v, err := driver.Word(cpu, c, name)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("  %s = %d\n", name, v)
			}
		}
	}
}

func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pascal370:", err)
	os.Exit(1)
}
