// Command pascal370 is the complete compiler: Pascal source through the
// shaper, the IF optimizer, and the table-driven code generator to an
// S/370 object deck, optionally executed on the simulator.
//
// Usage:
//
//	pascal370 [flags] program.pas...
//
// Several programs compile concurrently on the batch service's worker
// pool; per-program output appears in argument order regardless of
// completion order.
//
//	-spec NAME   code generator specification (amdahl470, amdahl-minimal,
//	             or a file path; default amdahl470)
//	-cache DIR   table-module cache: warm-start from a module published
//	             by cogg -cache instead of reconstructing the tables
//	-j N         worker pool size (default GOMAXPROCS)
//	-stats       print batch-service counters to standard error
//	-timeout D   per-program wall-time limit (e.g. 30s); a program past
//	             the deadline fails alone, the rest of the batch proceeds
//	-retries N   retry a program that failed with a transient (I/O) fault
//	-max-errors N  blocked-parse diagnostics collected per program before
//	             giving up (default 16)
//	-trace       print each program's phase-span tree (spec-load,
//	             table-decode/build, frontend, shape, parse-reduce with
//	             regalloc/emit children, assemble) to standard error
//	-S           print the assembly listing
//	-if          print the linearized intermediate form
//	-cse         run the IF optimizer (common subexpressions)
//	-checks      emit subscript checks
//	-deck FILE   write the object deck (single program only)
//	-run         execute on the simulator
//	-set n=v     initialize variable n before running (repeatable)
//	-print a,b   print listed variables after the run
//	-cpuprofile FILE  write a CPU profile (phase-labelled: tablebuild,
//	             decode, codegen)
//	-memprofile FILE  write an allocation profile on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/obs"
	"cogg/internal/profiling"
	"cogg/internal/rt370"
	"cogg/internal/s370"
	"cogg/internal/shaper"
	"cogg/specs"
)

type setFlags map[string]int32

func (s setFlags) String() string { return "" }

func (s setFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", v)
	}
	n, err := strconv.ParseInt(val, 10, 32)
	if err != nil {
		return err
	}
	s[name] = int32(n)
	return nil
}

func main() {
	specName := flag.String("spec", "amdahl470", "code generator specification")
	engine := flag.String("engine", "interpreted", "translation engine: interpreted, auto, or emitted (a compiled-in `cogg emit-go` engine; byte-identical output)")
	cacheDir := flag.String("cache", "", "table-module cache directory")
	workers := flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print batch-service statistics to stderr")
	timeout := flag.Duration("timeout", 0, "per-program wall-time limit (0 disables)")
	retries := flag.Int("retries", 0, "retries for transient (I/O) faults")
	maxErrors := flag.Int("max-errors", 0, "blocked-parse diagnostics per program (default 16)")
	trace := flag.Bool("trace", false, "print each program's phase-span tree to stderr")
	listing := flag.Bool("S", false, "print the assembly listing")
	showIF := flag.Bool("if", false, "print the linearized intermediate form")
	cse := flag.Bool("cse", false, "run the IF optimizer")
	checks := flag.Bool("checks", false, "emit subscript checks")
	uninit := flag.Bool("uninit", false, "abort on reads of uninitialized integers")
	deck := flag.String("deck", "", "write the object deck to this file")
	dis := flag.Bool("dis", false, "disassemble the object text (verifies the encoder)")
	run := flag.Bool("run", false, "execute on the simulator")
	printVars := flag.String("print", "", "comma separated variables to print after -run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	inits := setFlags{}
	flag.Var(inits, "set", "initialize a variable: name=value")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pascal370 [flags] program.pas...")
		os.Exit(2)
	}
	if *deck != "" && flag.NArg() > 1 {
		fatal(fmt.Errorf("-deck names a single output file; pass one program"))
	}

	opt := shaper.Options{StatementRecords: true, SubscriptChecks: *checks, UninitChecks: *uninit}
	if *cse {
		opt.CSE = ifopt.New().Apply
	}
	// With -trace, a startup trace brackets spec loading and table
	// construction, and each program gets its own trace threaded through
	// the pipeline via its unit context.
	var startupTr *obs.Trace
	tctx := context.Background()
	if *trace {
		startupTr = obs.NewTrace("", "startup")
		tctx = obs.ContextWith(tctx, startupTr, -1)
	}
	var unitTraces []*obs.Trace
	units := make([]batch.Unit, 0, flag.NArg())
	for _, srcFile := range flag.Args() {
		src, err := os.ReadFile(srcFile)
		if err != nil {
			fatal(err)
		}
		u := batch.Unit{Name: srcFile, Source: string(src), Opt: opt}
		if *trace {
			tr := obs.NewTrace("", srcFile)
			unitTraces = append(unitTraces, tr)
			u.Ctx = obs.ContextWith(context.Background(), tr, -1)
		}
		units = append(units, u)
	}

	var specSpan int
	if startupTr != nil {
		specSpan = startupTr.StartSpan("spec-load", -1)
	}
	sName, sSrc, err := loadSpec(*specName)
	if startupTr != nil {
		startupTr.EndSpan(specSpan)
	}
	if err != nil {
		fatal(err)
	}
	svc := batch.New(batch.Options{
		CacheDir:      *cacheDir,
		Workers:       *workers,
		UnitTimeout:   *timeout,
		Retries:       *retries,
		MeasureAllocs: *stats,
		Engine:        *engine,
	})
	cfg := rt370.Config()
	cfg.MaxBlocks = *maxErrors
	tgt, err := svc.TargetCtx(tctx, sName, sSrc, cfg)
	if err != nil {
		fatal(err)
	}
	if startupTr != nil {
		fmt.Fprint(os.Stderr, startupTr.Snapshot().Tree())
	}

	failed := false
	for i, r := range svc.CompileBatch(tgt, units) {
		if *trace {
			fmt.Fprint(os.Stderr, unitTraces[i].Snapshot().Tree())
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "pascal370: %s [%s]: %v\n", r.Name, r.Mode, r.Err)
			failed = true
			continue
		}
		if err := report(r.Name, r.Compiled, tgt, reportOpts{
			listing: *listing, showIF: *showIF, dis: *dis, deck: *deck,
			run: *run, printVars: *printVars, inits: inits,
		}); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, svc.Stats.String())
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

type reportOpts struct {
	listing, showIF, dis, run bool
	deck, printVars           string
	inits                     setFlags
}

// report prints one compiled program's requested views and optionally
// runs it — the per-program half of the original single-file flow.
func report(srcFile string, c *driver.Compiled, tgt *driver.Target, o reportOpts) error {
	if o.showIF {
		fmt.Println(ir.FormatTokens(c.Tokens))
	}
	if o.listing {
		fmt.Print(c.Listing())
	}
	fmt.Printf("%s: %d IF tokens, %d reductions, %d instructions, %d code bytes\n",
		srcFile, len(c.Tokens), c.Result.Reductions,
		c.Prog.InstructionCount(), c.Prog.CodeSize)

	if o.dis {
		m, ok := tgt.Machine.(*s370.Machine)
		if !ok {
			return fmt.Errorf("-dis supports the s370 target only")
		}
		for _, txt := range c.Deck.Texts {
			if txt.Addr >= c.Prog.Origin && txt.Addr < c.Prog.Origin+c.Prog.CodeSize {
				fmt.Print(s370.DisassembleAll(m, txt.Data, txt.Addr))
			}
		}
	}
	if o.deck != "" {
		f, err := os.Create(o.deck)
		if err != nil {
			return err
		}
		if err := c.Deck.WriteCards(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d text bytes\n", o.deck, c.Deck.TotalTextBytes())
	}
	if o.run {
		cpu, err := c.Run(o.inits, 50_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("executed %d instructions\n", cpu.Steps)
		if out := driver.Output(cpu); len(out) > 0 {
			fmt.Print("output:")
			for _, v := range out {
				fmt.Printf(" %d", v)
			}
			fmt.Println()
		}
		if o.printVars != "" {
			for _, name := range strings.Split(o.printVars, ",") {
				name = strings.TrimSpace(name)
				v, err := driver.Word(cpu, c, name)
				if err != nil {
					return err
				}
				fmt.Printf("  %s = %d\n", name, v)
			}
		}
	}
	return nil
}

func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pascal370:", err)
	os.Exit(1)
}
