// Command coggload is the load generator for the cogd compilation
// daemon: closed-loop (a fixed set of workers issuing requests
// back-to-back) or open-loop (requests launched on a fixed schedule
// regardless of completions, the tail-latency-honest mode), with a
// latency histogram and a machine-readable summary.
//
// Usage:
//
//	coggload [flags]
//
//	-url URL      daemon base URL (default http://127.0.0.1:8470)
//	-targets URLS comma-separated replica base URLs: drive a whole fleet
//	              through the cluster policy engine (internal/cluster),
//	              spreading load across replicas and reporting a
//	              per-replica latency breakdown; overrides -url
//	-retries N    retryable-answer (transport error, 429, 5xx) retries
//	              per request through the policy engine (default 0: a
//	              failure is a failure, the measurement-honest mode)
//	-timeout D    per-attempt timeout in the policy engine (0: none)
//	-hedge-after D hedge a request still unanswered after D; 0 adapts
//	              to the observed p99, -1 disables (default -1)
//	-lang L       request language: pascal (default) or if
//	-src FILE     request source; default is an embedded Pascal program
//	              (or an embedded IF stream with -lang if)
//	-synth DIR    cycle request bodies through the *.if corpus files in
//	              DIR (as written by ifsynth -out), implying -lang if:
//	              load with grammar-wide variety instead of one fixed
//	              program
//	-spec NAME    spec the requests select (daemon default when empty)
//	-n N          closed loop: total requests (default 500)
//	-c N          closed loop: concurrent workers (default 8)
//	-rate R       open loop: launch R requests/second instead of the
//	              closed loop (0 disables)
//	-duration D   open loop: how long to generate load (default 10s)
//	-warmup N     unmeasured priming requests (default 2*c)
//	-deadline D   per-request deadline_ms sent to the daemon (0: none)
//	-name NAME    benchmark name in the JSON summary (default
//	              BenchmarkLoadCompile/<lang>)
//	-o FILE       write the summary as benchgate-compatible JSON: p50
//	              latency as ns_per_op, p95/p99/throughput plus
//	              per-status counts and latency percentiles as metrics,
//	              so serving regressions gate exactly like the
//	              micro-benchmarks (cmd/benchgate)
//	-report-blob  scrape each target's /metrics after the run and fold
//	              the artifact-tier counters (cogg_blob_*, cogg_cache_*)
//	              into the summary — how much work came warm from the
//	              shared tier versus built from source; in a fleet run
//	              each key is prefixed by the replica's host:port
//	-report-slo   scrape each target's /metrics cogg_slo_* series —
//	              request/breach totals and the 1m/10m burn-rate gauges —
//	              into the summary, so a load run records how far the
//	              fleet was from its latency objective
//
// Latency is reported per HTTP status as well as in aggregate: each
// status' count and p50/p95/p99 are printed and included in the JSON,
// so rejections and timeouts no longer fold silently into (or hide
// from) the success distribution.
//
//	-note NOTE    note stored in the JSON summary
//
// Exit status is nonzero when any request failed (non-2xx other than
// backpressure 429s in open-loop mode, which are counted separately).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cogg/internal/cluster"
)

// defaultPascal keeps the daemon's full pipeline busy: procedures,
// loops, arrays — the end2end example's sieve, truncated for brevity.
const defaultPascal = `
program load;
var v: array[1..20] of integer;
    i, sum, prod: integer;

function square(n: integer): integer;
begin
  square := n * n
end;

begin
  sum := 0; prod := 1;
  for i := 1 to 20 do v[i] := square(i) - i;
  for i := 1 to 20 do
  begin
    sum := sum + v[i];
    if odd(i) then prod := prod * 2
  end;
  writeln(sum); writeln(prod)
end.
`

// defaultIF exercises the raw-IF fast path: the paper's running
// example shape, assignment with indexing and arithmetic.
const defaultIF = `assign fullword dsp.96 r.13 iadd imult fullword dsp.100 r.13 fullword dsp.104 r.13 isub fullword dsp.108 r.13 pos_constant v.7`

type result struct {
	latency time.Duration
	status  int
	replica string
	err     error
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8470", "daemon base URL")
	targetsFlag := flag.String("targets", "", "comma-separated replica base URLs (overrides -url)")
	retries := flag.Int("retries", 0, "retryable-answer retries per request")
	attemptTimeout := flag.Duration("timeout", 0, "per-attempt timeout (0: none)")
	hedgeAfter := flag.Duration("hedge-after", -1, "hedge delay (0: adaptive p99, -1: off)")
	lang := flag.String("lang", "pascal", "request language: pascal or if")
	srcFile := flag.String("src", "", "request source file (default: embedded)")
	synthDir := flag.String("synth", "", "directory of *.if corpus files to cycle through (implies -lang if)")
	spec := flag.String("spec", "", "spec the requests select")
	n := flag.Int("n", 500, "closed loop: total requests")
	c := flag.Int("c", 8, "closed loop: concurrent workers")
	rate := flag.Float64("rate", 0, "open loop: requests per second (0: closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "open loop: load duration")
	warmup := flag.Int("warmup", -1, "unmeasured priming requests (default 2*c)")
	deadline := flag.Duration("deadline", 0, "per-request deadline sent to the daemon")
	benchName := flag.String("name", "", "benchmark name in the JSON summary")
	out := flag.String("o", "", "write benchgate-compatible JSON summary")
	note := flag.String("note", "", "note stored in the JSON summary")
	reportBlob := flag.Bool("report-blob", false, "scrape each target's /metrics cogg_blob_* and cache counters into the summary")
	reportSLO := flag.Bool("report-slo", false, "scrape each target's /metrics cogg_slo_* burn-rate series into the summary")
	flag.Parse()

	if *synthDir != "" {
		if *srcFile != "" {
			fatal(fmt.Errorf("-synth and -src are mutually exclusive"))
		}
		*lang = "if"
	}
	source := defaultPascal
	if *lang == "if" {
		source = defaultIF
	} else if *lang != "pascal" {
		fatal(fmt.Errorf("unknown -lang %q", *lang))
	}
	if *srcFile != "" {
		b, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		source = string(b)
	}
	sources := []string{source}
	if *synthDir != "" {
		var err error
		if sources, err = loadSynthCorpus(*synthDir); err != nil {
			fatal(err)
		}
	}
	if *warmup < 0 {
		*warmup = 2 * *c
	}
	if *benchName == "" {
		*benchName = "BenchmarkLoadCompile/" + *lang
	}

	bodies := make([][]byte, len(sources))
	for i, src := range sources {
		body, err := json.Marshal(map[string]any{
			"name":        "load." + *lang,
			"lang":        *lang,
			"source":      src,
			"spec":        *spec,
			"deadline_ms": int(deadline.Milliseconds()),
		})
		if err != nil {
			fatal(err)
		}
		bodies[i] = body
	}
	targets := []string{*url}
	multi := false
	if *targetsFlag != "" {
		targets = nil
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		multi = len(targets) > 1
	}
	// All traffic flows through the cluster policy engine — the same
	// retry/hedge/breaker implementation as cmd/cogdfront — so a load
	// test measures exactly the client behavior production gets. With
	// the default single target, zero retries, and hedging off, the
	// engine is a pass-through and measurement semantics are unchanged:
	// active /readyz probing stays off (no background traffic) and the
	// circuit breaker is effectively disabled, so a run of 5xx answers
	// is recorded as the daemon's real responses instead of tripping
	// into synthetic "no admissible replica" errors that would skew the
	// reported status and latency distributions.
	plain := !multi && *retries == 0 && *hedgeAfter < 0
	probe := time.Duration(-1)
	breakerThreshold := 0 // the cluster default
	if !plain {
		probe = 250 * time.Millisecond
	} else {
		breakerThreshold = math.MaxInt32
	}
	cl, err := cluster.New(cluster.Options{
		Targets:          targets,
		MaxRetries:       *retries,
		AttemptTimeout:   *attemptTimeout,
		HedgeAfter:       *hedgeAfter,
		ProbeInterval:    probe,
		BreakerThreshold: breakerThreshold,
		HTTPClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * *c,
			MaxIdleConnsPerHost: 4 * *c,
		}},
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	var seq atomic.Int64
	shoot := func() result {
		i := seq.Add(1) - 1
		body := bodies[int(i)%len(bodies)]
		// The routing key varies per request so a fleet is loaded
		// uniformly; real clients keying by spec alone would concentrate
		// each spec's traffic on its hash owner instead.
		key := fmt.Sprintf("%s/%d", *spec, i)
		t0 := time.Now()
		res, err := cl.Do(context.Background(), "/v1/compile", key, body)
		if err != nil {
			return result{latency: time.Since(t0), err: err}
		}
		return result{latency: time.Since(t0), status: res.Status, replica: res.Replica}
	}

	for i := 0; i < *warmup; i++ {
		if r := shoot(); r.err != nil {
			fatal(fmt.Errorf("warmup request: %w", r.err))
		}
	}

	var results []result
	var elapsed time.Duration
	mode := ""
	if *rate > 0 {
		mode = fmt.Sprintf("open loop, %.0f req/s for %v", *rate, *duration)
		results, elapsed = openLoop(shoot, *rate, *duration)
	} else {
		mode = fmt.Sprintf("closed loop, %d workers, %d requests", *c, *n)
		results, elapsed = closedLoop(shoot, *n, *c)
	}

	target := *url
	if multi {
		target = strings.Join(targets, ", ")
	}
	snap := cl.Snapshot()
	extra := map[string]float64{}
	if *reportBlob {
		mergeMetrics(extra, scrapeFleetMetrics(targets, multi, "cogg_blob_", "cogg_cache_"))
	}
	if *reportSLO {
		mergeMetrics(extra, scrapeFleetMetrics(targets, multi, "cogg_slo_"))
	}
	report(os.Stdout, mode, target, results, elapsed, *benchName, *out, *note, multi, snap, extra)
}

// closedLoop issues total requests from c workers back-to-back.
func closedLoop(shoot func() result, total, c int) ([]result, time.Duration) {
	results := make([]result, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				results[i] = shoot()
			}
		}()
	}
	wg.Wait()
	return results, time.Since(t0)
}

// openLoop launches requests on a fixed schedule, decoupled from
// completions: queueing delay shows up as latency instead of throttling
// the generator.
func openLoop(shoot func() result, rate float64, d time.Duration) ([]result, time.Duration) {
	total := int(d.Seconds() * rate)
	results := make([]result, total)
	var wg sync.WaitGroup
	t0 := time.Now()
	// Pace against the wall clock, not a per-request ticker: above
	// ~1k req/s a tick per request loses to timer granularity, so each
	// wake-up fires however many requests the schedule now calls for.
	for fired := 0; fired < total; {
		due := int(time.Since(t0).Seconds() * rate)
		if due > total {
			due = total
		}
		for ; fired < due; fired++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = shoot()
			}(fired)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	return results, time.Since(t0)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(w io.Writer, mode, url string, results []result, elapsed time.Duration, benchName, outFile, note string, multi bool, snap cluster.Snapshot, extra map[string]float64) {
	// Latencies are grouped per HTTP status, each sorted for
	// percentiles: a 429's latency says how fast backpressure answers
	// and a 504's how long the deadline held the client, and folding
	// either into the success distribution would misstate both.
	byStatus := map[int][]time.Duration{}
	var ok []time.Duration
	transportErrs := 0
	for _, r := range results {
		if r.err != nil {
			transportErrs++
			continue
		}
		byStatus[r.status] = append(byStatus[r.status], r.latency)
		if r.status >= 200 && r.status < 300 {
			ok = append(ok, r.latency)
		}
	}
	for _, ds := range byStatus {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	var sum time.Duration
	for _, d := range ok {
		sum += d
	}
	mean := time.Duration(0)
	if len(ok) > 0 {
		mean = sum / time.Duration(len(ok))
	}
	p50 := percentile(ok, 0.50)
	p95 := percentile(ok, 0.95)
	p99 := percentile(ok, 0.99)
	rps := float64(len(ok)) / elapsed.Seconds()

	fmt.Fprintf(w, "coggload: %s against %s\n", mode, url)
	fmt.Fprintf(w, "  completed   %d ok in %v (%.1f req/s)\n", len(ok), elapsed.Round(time.Millisecond), rps)
	fmt.Fprintf(w, "  latency     p50 %v  p95 %v  p99 %v  mean %v  max %v\n",
		p50, p95, p99, mean, percentile(ok, 1.0))
	for _, s := range sortedStatuses(byStatus) {
		ds := byStatus[s]
		fmt.Fprintf(w, "  status %d  ×%-5d p50 %v  p95 %v  p99 %v\n",
			s, len(ds), percentile(ds, 0.50), percentile(ds, 0.95), percentile(ds, 0.99))
	}
	if transportErrs > 0 {
		fmt.Fprintf(w, "  transport-errors ×%d\n", transportErrs)
	}

	// Per-replica breakdown of successful answers: in a fleet run this
	// shows routing (who served what) and per-replica latency, so one
	// browned-out replica is visible instead of averaged away.
	byReplica := map[string][]time.Duration{}
	for _, r := range results {
		if r.err == nil && r.replica != "" && r.status >= 200 && r.status < 300 {
			byReplica[r.replica] = append(byReplica[r.replica], r.latency)
		}
	}
	for _, ds := range byReplica {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	}
	if multi || len(byReplica) > 1 {
		for _, name := range sortedReplicas(byReplica) {
			ds := byReplica[name]
			fmt.Fprintf(w, "  replica %-21s ×%-5d p50 %v  p95 %v  p99 %v\n",
				name, len(ds), percentile(ds, 0.50), percentile(ds, 0.95), percentile(ds, 0.99))
		}
	}
	if snap.Retries+snap.Hedges+snap.Failovers+snap.Degraded > 0 {
		fmt.Fprintf(w, "  policy      %d retries, %d hedges (%d won), %d failovers, %d degraded\n",
			snap.Retries, snap.Hedges, snap.HedgeWins, snap.Failovers, snap.Degraded)
	}

	if len(extra) > 0 {
		for _, k := range sortedKeys(extra) {
			fmt.Fprintf(w, "  blob        %s = %g\n", k, extra[k])
		}
	}
	if outFile != "" {
		if err := writeSummary(outFile, benchName, note, ok, p50, p95, p99, rps, byStatus, byReplica, snap, transportErrs, extra); err != nil {
			fatal(err)
		}
	}

	failures := transportErrs
	for s, ds := range byStatus {
		if (s < 200 || s >= 300) && s != http.StatusTooManyRequests {
			failures += len(ds)
		}
	}
	if failures > 0 || len(ok) == 0 {
		fmt.Fprintf(os.Stderr, "coggload: %d failed requests\n", failures)
		os.Exit(1)
	}
}

// benchFile mirrors cmd/benchgate's File so the summary feeds the same
// regression gate as the micro-benchmarks.
type benchFile struct {
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func writeSummary(path, name, note string, ok []time.Duration, p50, p95, p99 time.Duration, rps float64, byStatus map[int][]time.Duration, byReplica map[string][]time.Duration, snap cluster.Snapshot, transportErrs int, extra map[string]float64) error {
	rejected := len(byStatus[http.StatusTooManyRequests])
	failed := transportErrs
	for s, ds := range byStatus {
		if (s < 200 || s >= 300) && s != http.StatusTooManyRequests {
			failed += len(ds)
		}
	}
	metrics := map[string]float64{
		"p95-ns":   float64(p95.Nanoseconds()),
		"p99-ns":   float64(p99.Nanoseconds()),
		"req/s":    rps,
		"ok":       float64(len(ok)),
		"rejected": float64(rejected),
		"failed":   float64(failed),
	}
	// Per-status counts and latency percentiles, so the gate can watch
	// e.g. the 429 answer time or a creeping 5xx rate, not just the
	// aggregate success distribution.
	for s, ds := range byStatus {
		prefix := fmt.Sprintf("status-%d-", s)
		metrics[prefix+"count"] = float64(len(ds))
		metrics[prefix+"p50-ns"] = float64(percentile(ds, 0.50).Nanoseconds())
		metrics[prefix+"p95-ns"] = float64(percentile(ds, 0.95).Nanoseconds())
		metrics[prefix+"p99-ns"] = float64(percentile(ds, 0.99).Nanoseconds())
	}
	// Per-replica counts and latency percentiles, so the gate can catch
	// one replica serving slow (or nothing) while the fleet aggregate
	// still looks healthy.
	for name, ds := range byReplica {
		prefix := "replica-" + name + "-"
		metrics[prefix+"count"] = float64(len(ds))
		metrics[prefix+"p50-ns"] = float64(percentile(ds, 0.50).Nanoseconds())
		metrics[prefix+"p95-ns"] = float64(percentile(ds, 0.95).Nanoseconds())
		metrics[prefix+"p99-ns"] = float64(percentile(ds, 0.99).Nanoseconds())
	}
	for k, v := range extra {
		metrics[k] = v
	}
	if snap.Attempts > 0 {
		metrics["policy-retries"] = float64(snap.Retries)
		metrics["policy-hedges"] = float64(snap.Hedges)
		metrics["policy-hedge-wins"] = float64(snap.HedgeWins)
		metrics["policy-failovers"] = float64(snap.Failovers)
		metrics["policy-degraded"] = float64(snap.Degraded)
	}
	f := benchFile{
		Note: note,
		Benchmarks: map[string]benchEntry{
			name: {
				NsPerOp: float64(p50.Nanoseconds()),
				Metrics: metrics,
			},
		},
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedStatuses(m map[int][]time.Duration) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func sortedReplicas(m map[string][]time.Duration) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// loadSynthCorpus reads every *.if file under dir (an ifsynth -out
// corpus) in name order, so the workers cycle through the whole
// grammar's worth of program shapes instead of hammering one body.
func loadSynthCorpus(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.if"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-synth %s: no *.if corpus files", dir)
	}
	sort.Strings(paths)
	sources := make([]string, len(paths))
	for i, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sources[i] = string(b)
	}
	return sources, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coggload:", err)
	os.Exit(1)
}

// scrapeFleetMetrics pulls the series matching the given name prefixes
// out of each target's /metrics exposition. -report-blob uses it for
// the artifact-tier counters (how much of the fleet's work came warm
// from the shared tier versus built from source); -report-slo for the
// burn-rate gauges and breach counters. With one target the series keep
// their bare names ("blob-hits-http", "slo-burn-rate-compile-1m"); in a
// fleet run each key is prefixed by the replica's host:port so
// benchgate can watch one replica specifically.
func scrapeFleetMetrics(targets []string, multi bool, prefixes ...string) map[string]float64 {
	out := map[string]float64{}
	for _, target := range targets {
		series, err := scrapeTarget(target, prefixes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coggload: scraping %s/metrics: %v\n", target, err)
			continue
		}
		prefix := ""
		if multi {
			if u, err := neturl.Parse(target); err == nil {
				prefix = u.Host + "-"
			}
		}
		for k, v := range series {
			out[prefix+k] = v
		}
	}
	return out
}

// mergeMetrics folds src into dst, summing on key collisions.
func mergeMetrics(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// scrapeTarget parses the matching sample lines of one Prometheus text
// exposition. "cogg_blob_hits_total{backend="fs"} 3" becomes
// blob-hits-fs=3; histogram bucket series (which may carry exemplar
// suffixes) are skipped.
func scrapeTarget(target string, prefixes []string) (map[string]float64, error) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	series := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		matched := false
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, valText := line[:sp], line[sp+1:]
		if strings.Contains(name, "_bucket{") || strings.Contains(name, "_bucket ") {
			continue
		}
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			continue
		}
		series[metricKey(name)] += v
	}
	return series, sc.Err()
}

// metricKey flattens one exposition series name into a benchgate
// metric key: prefix and _total stripped, label values folded in.
func metricKey(name string) string {
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		for _, pair := range strings.Split(strings.Trim(name[i:], "{}"), ",") {
			if _, v, ok := strings.Cut(pair, "="); ok {
				labels += "-" + strings.Trim(v, `"`)
			}
		}
		name = name[:i]
	}
	name = strings.TrimSuffix(name, "_total")
	name = strings.TrimPrefix(name, "cogg_")
	return strings.ReplaceAll(name, "_", "-") + labels
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
