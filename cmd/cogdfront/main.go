// Command cogdfront is the fleet front for replicated cogd daemons: a
// reverse proxy that consistent-hashes requests across replicas by spec
// (cache affinity), probes every replica's /readyz, retries retryable
// answers with jittered backoff honoring Retry-After, hedges slow
// requests, trips per-replica circuit breakers, and — with -local — falls
// back to in-process compilation (responses flagged "degraded":true)
// when no replica can answer. The policy engine is internal/cluster,
// shared with coggload's -targets mode.
//
// Usage:
//
//	cogdfront -targets URL[,URL...] [flags]
//
//	-addr HOST:PORT       listen address (default 127.0.0.1:8471)
//	-targets URLS         comma-separated replica base URLs (required)
//	-retries N            retryable-answer retries per request (default 3)
//	-timeout D            per-attempt timeout; a hung replica is only
//	                      detectable through this (default 10s)
//	-hedge-after D        hedge a request still unanswered after D;
//	                      0 adapts to the observed p99, -1 disables
//	                      (default 0)
//	-probe-interval D     /readyz probe period per replica (default 250ms)
//	-breaker-threshold N  consecutive failures that open a replica's
//	                      breaker (default 5)
//	-breaker-cooldown D   open-breaker cooldown before the half-open
//	                      probe (default 1s)
//	-local                serve requests locally when no replica can
//	-spec NAME            local tier's spec (as cogd -spec)
//	-risc                 local tier's risc32 configuration
//	-cache DIR            local tier's table-module cache directory
//	-log-format FMT       text (default, the traditional log lines) or
//	                      json (structured log/slog output)
//
// Endpoints mirror cogd's: POST /v1/compile, /v1/batch,
// /v1/grammar/session, /v1/grammar/next (grammar sessions are pinned to
// the replica that opened them via a session-ID prefix — a hash of the
// replica's URL, so the front stays stateless and any front over the
// same replicas routes the session home regardless of -targets order),
// GET /healthz, /readyz, /varz (replica health and policy counters),
// /metrics (cluster_* series in Prometheus text), /v1/traces (recent
// front-side span trees; ?id= filters by trace ID for cogg trace).
package main

import (
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cogg/internal/applog"
	"cogg/internal/cluster"
	"cogg/internal/obs"
	"cogg/internal/server"
	"cogg/specs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8471", "listen address")
	targets := flag.String("targets", "", "comma-separated cogd replica base URLs")
	retries := flag.Int("retries", 3, "retryable-answer retries per request")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt timeout")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge delay (0: adaptive p99, -1: off)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "/readyz probe period per replica")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown")
	local := flag.Bool("local", false, "fall back to in-process compilation when no replica can answer")
	specName := flag.String("spec", "amdahl470", "local tier's code generator specification")
	risc := flag.Bool("risc", false, "local tier's risc32 target configuration")
	cacheDir := flag.String("cache", "", "local tier's table-module cache directory")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	// A nil *applog.Logger degrades to plain log.Printf, so the error
	// path is safe even though lg is nil when New rejects the format.
	lg, err := applog.New(*logFormat, "cogdfront")
	if err != nil {
		lg.Fatalf("cogdfront: %v", err)
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, t)
		}
	}
	if len(urls) == 0 {
		lg.Fatalf("cogdfront: -targets is required (comma-separated cogd base URLs)")
	}

	reg := obs.NewRegistry()
	opts := cluster.Options{
		Targets:          urls,
		MaxRetries:       *retries,
		AttemptTimeout:   *timeout,
		HedgeAfter:       *hedgeAfter,
		ProbeInterval:    *probeInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Registry:         reg,
	}
	if *local {
		// The local tier is built on first use, not at startup: a front
		// over a healthy fleet never pays table construction.
		opts.Local = func() (http.Handler, error) {
			name, src, err := loadSpec(*specName)
			if err != nil {
				return nil, err
			}
			srv, err := server.New(server.Options{
				SpecName: name,
				SpecSrc:  src,
				Risc:     *risc || *specName == "risc32",
				CacheDir: *cacheDir,
				Registry: reg,
				Process:  "cogdfront-local",
				Logf:     lg.Printf,
				Logger:   lg.Slog(),
			})
			if err != nil {
				return nil, err
			}
			lg.Printf("cogdfront: degraded: serving %s locally", name)
			return srv.Handler(), nil
		}
	}
	cl, err := cluster.New(opts)
	if err != nil {
		lg.Fatalf("cogdfront: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Fatalf("cogdfront: %v", err)
	}
	lg.Printf("cogdfront: serving %d replicas (%s) on %s", len(urls), strings.Join(cl.Replicas(), ", "), ln.Addr())

	front := cluster.NewFront(cl)
	// The bound address distinguishes this front in stitched traces.
	front.SetProcess("cogdfront@" + ln.Addr().String())
	httpSrv := &http.Server{Handler: front.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		lg.Printf("cogdfront: %v: shutting down", sig)
		cl.Close()
		_ = httpSrv.Close()
	case err := <-errc:
		lg.Fatalf("cogdfront: %v", err)
	}
}

// loadSpec resolves an embedded spec name or reads a .cogg file, as
// cogd does.
func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	case "risc32":
		return "risc32.cogg", specs.Risc32, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}
