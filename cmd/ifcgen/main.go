// Command ifcgen drives a generated code generator over textual
// intermediate form directly — the tool for debugging code generator
// specifications without a front end in the loop.
//
// Usage:
//
//	ifcgen [flags] [if-file...]
//
// The IF is read from the files or standard input, as whitespace
// separated tokens ("assign fullword dsp.100 r.13 iadd ..."). With
// several files the streams are translated concurrently on the batch
// service's worker pool; listings are printed in argument order.
//
//	-spec NAME   specification (amdahl470, amdahl-minimal, risc32, or a path)
//	-risc        use the risc32 target configuration
//	-cache DIR   table-module cache: warm-start from a module published
//	             by cogg -cache instead of reconstructing the tables
//	-j N         worker pool size (default GOMAXPROCS)
//	-stats       print the batch-service counters (cache traffic, table
//	             build vs. codegen time, queue depth) to standard error
//	-trace       trace every parser action to stderr (single stream only)
//	-spans       print each stream's phase-span tree (spec-load,
//	             table-decode/build, parse-reduce with regalloc/emit
//	             children) to standard error
//	-timeout D   per-stream wall-time limit (e.g. 30s); a stream past the
//	             deadline fails alone while the rest of the batch proceeds
//	-retries N   retry a stream that failed with a transient (I/O) fault
//	-max-errors N  blocked-parse diagnostics collected per stream before
//	             giving up (default 16); each names the parse state, the
//	             stacked symbols, and the IF operator the tables reject
//	-cpuprofile FILE  write a CPU profile (phase-labelled: tablebuild,
//	             decode, codegen)
//	-memprofile FILE  write an allocation profile on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/obs"
	"cogg/internal/profiling"
	"cogg/internal/rt370"
	"cogg/specs"
)

func main() {
	specName := flag.String("spec", "amdahl470", "code generator specification")
	risc := flag.Bool("risc", false, "use the risc32 target configuration")
	trace := flag.Bool("trace", false, "trace every parser action to stderr")
	spans := flag.Bool("spans", false, "print each stream's phase-span tree to stderr")
	cacheDir := flag.String("cache", "", "table-module cache directory")
	workers := flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print batch-service statistics to stderr")
	timeout := flag.Duration("timeout", 0, "per-stream wall-time limit (0 disables)")
	retries := flag.Int("retries", 0, "retries for transient (I/O) faults")
	maxErrors := flag.Int("max-errors", 0, "blocked-parse diagnostics per stream (default 16)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	units, err := readUnits(flag.Args())
	if err != nil {
		fatal(err)
	}
	if *trace && len(units) > 1 {
		fatal(fmt.Errorf("-trace interleaves across streams; pass a single file"))
	}

	// With -spans, a startup trace brackets spec loading and table
	// construction, and each stream gets its own trace via its unit
	// context (the -trace flag is the parser-action log, a different
	// view).
	var startupTr *obs.Trace
	tctx := context.Background()
	var unitTraces []*obs.Trace
	if *spans {
		startupTr = obs.NewTrace("", "startup")
		tctx = obs.ContextWith(tctx, startupTr, -1)
		unitTraces = make([]*obs.Trace, len(units))
		for i := range units {
			unitTraces[i] = obs.NewTrace("", units[i].Name)
			units[i].Ctx = obs.ContextWith(context.Background(), unitTraces[i], -1)
		}
	}

	var specSpan int
	if startupTr != nil {
		specSpan = startupTr.StartSpan("spec-load", -1)
	}
	sName, sSrc, err := loadSpec(*specName)
	if startupTr != nil {
		startupTr.EndSpan(specSpan)
	}
	if err != nil {
		fatal(err)
	}
	cfg := rt370.Config()
	if *risc {
		cfg = driver.RiscConfig()
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	cfg.MaxBlocks = *maxErrors

	svc := batch.New(batch.Options{
		CacheDir:      *cacheDir,
		Workers:       *workers,
		UnitTimeout:   *timeout,
		Retries:       *retries,
		MeasureAllocs: *stats,
	})
	tgt, err := svc.TargetCtx(tctx, sName, sSrc, cfg)
	if err != nil {
		fatal(err)
	}
	if startupTr != nil {
		fmt.Fprint(os.Stderr, startupTr.Snapshot().Tree())
	}
	results := svc.TranslateBatch(tgt, units)

	failed := false
	for i, r := range results {
		if *spans {
			fmt.Fprint(os.Stderr, unitTraces[i].Snapshot().Tree())
		}
		if len(results) > 1 {
			fmt.Printf("=== %s\n", r.Name)
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "ifcgen: %s [%s]: %v\n", r.Name, r.Mode, r.Err)
			failed = true
			continue
		}
		fmt.Print(r.Listing)
		fmt.Printf("%d tokens, %d reductions, %d instructions\n",
			r.Tokens, r.Reductions, r.Instructions)
	}
	if *stats {
		fmt.Fprint(os.Stderr, svc.Stats.String())
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// readUnits loads each named IF file, or standard input when no files
// are given.
func readUnits(args []string) ([]batch.IFUnit, error) {
	if len(args) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return []batch.IFUnit{{Name: "ifcgen", Text: string(src)}}, nil
	}
	units := make([]batch.IFUnit, 0, len(args))
	for _, a := range args {
		src, err := os.ReadFile(a)
		if err != nil {
			return nil, err
		}
		units = append(units, batch.IFUnit{Name: a, Text: string(src)})
	}
	return units, nil
}

func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	case "risc32":
		return "risc32.cogg", specs.Risc32, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ifcgen:", err)
	os.Exit(1)
}
