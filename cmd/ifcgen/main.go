// Command ifcgen drives a generated code generator over textual
// intermediate form directly — the tool for debugging code generator
// specifications without a front end in the loop.
//
// Usage:
//
//	ifcgen [flags] [if-file]
//
// The IF is read from the file or standard input, as whitespace
// separated tokens ("assign fullword dsp.100 r.13 iadd ...").
//
//	-spec NAME   specification (amdahl470, amdahl-minimal, risc32, or a path)
//	-risc        use the risc32 target configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cogg/internal/asm"
	"cogg/internal/driver"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/rt370"
	"cogg/specs"
)

func main() {
	specName := flag.String("spec", "amdahl470", "code generator specification")
	risc := flag.Bool("risc", false, "use the risc32 target configuration")
	trace := flag.Bool("trace", false, "trace every parser action to stderr")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	toks, err := ir.ParseTokens(string(src))
	if err != nil {
		fatal(err)
	}

	sName, sSrc, err := loadSpec(*specName)
	if err != nil {
		fatal(err)
	}
	cfg := rt370.Config()
	if *risc {
		cfg = driver.RiscConfig()
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	tgt, err := driver.NewTargetWithConfig(sName, sSrc, cfg)
	if err != nil {
		fatal(err)
	}
	prog, res, err := tgt.Gen.Generate("ifcgen", toks)
	if err != nil {
		fatal(err)
	}
	if err := labels.Layout(prog, tgt.Machine); err != nil {
		fatal(err)
	}
	fmt.Print(asm.Listing(prog, tgt.Machine))
	fmt.Printf("%d tokens, %d reductions, %d instructions\n",
		len(toks), res.Reductions, prog.InstructionCount())
}

func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	case "risc32":
		return "risc32.cogg", specs.Risc32, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ifcgen:", err)
	os.Exit(1)
}
