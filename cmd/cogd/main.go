// Command cogd is the compile-as-a-service daemon: the table-driven
// code generator behind an HTTP/JSON API, with the tables built (or
// cache-loaded) once at startup and every request served from pooled
// translation sessions over the batch worker pool.
//
// Usage:
//
//	cogd [flags]
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8470)
//	-spec NAME       default specification (amdahl470, amdahl-minimal,
//	                 risc32, or a .cogg file path)
//	-risc            apply the risc32 target configuration to the spec
//	-cache DIR       on-disk blob store for table modules and decks
//	                 (warm starts skip SLR construction)
//	-blob-peers URLS comma-separated fleet replica base URLs; cold
//	                 starts fetch built artifacts from a peer's
//	                 /v1/artifacts instead of constructing tables
//	-blob-timeout D  per-attempt deadline for peer artifact fetches
//	                 (default 2s)
//	-blob-mem N      in-memory blob tier entry bound (default 256)
//	-j N             batch worker pool size (default GOMAXPROCS)
//	-pool N          reusable sessions kept per module (default 2*j)
//	-queue N         admission queue bound; a full queue answers 429
//	-batch-window D  micro-batch coalescing window (default 200µs)
//	-batch-max N     units per micro-batch (default 64)
//	-timeout D       default per-request deadline (default 15s)
//	-drain D         graceful-drain budget on SIGTERM/SIGINT (default 30s)
//	-trace-ring N    request traces retained for /v1/traces (default 64)
//	-slow D          log the span tree of requests slower than D
//	                 (0 disables slow-request logging)
//	-slo D           request-latency SLO threshold backing the
//	                 cogg_slo_* burn-rate series (default 50ms)
//	-slo-objective F target good-request fraction (default 0.99)
//	-log-format FMT  text (default, the traditional log lines) or json
//	                 (structured log/slog output carrying trace IDs)
//	-pprof           mount /debug/pprof (default off; profiling endpoints
//	                 stay unreachable unless explicitly requested)
//	-stats           print the batch-service counters on exit
//
// Endpoints: POST /v1/compile, POST /v1/batch, GET /healthz (liveness,
// always 200), /readyz (readiness: 503 with Retry-After while
// draining), /varz, /metrics (Prometheus text exposition), /v1/traces
// (recent span trees), /debug/vars, and (with -pprof) /debug/pprof.
// The bound listen address is logged at startup. On SIGTERM or SIGINT
// the daemon stops admitting work (readyz turns 503 so fleet fronts
// route around it; healthz stays 200 so supervisors don't restart a
// draining process), finishes in-flight requests within the drain
// budget, then exits. To run several cogd replicas behind one resilient
// endpoint, see cmd/cogdfront.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cogg/internal/applog"
	"cogg/internal/server"
	"cogg/specs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8470", "listen address")
	specName := flag.String("spec", "amdahl470", "default code generator specification")
	risc := flag.Bool("risc", false, "use the risc32 target configuration for the default spec")
	engine := flag.String("engine", "interpreted", "translation engine: interpreted, auto, or emitted (a compiled-in `cogg emit-go` engine; byte-identical output)")
	cacheDir := flag.String("cache", "", "table-module cache directory")
	blobPeers := flag.String("blob-peers", "", "comma-separated peer base URLs for the shared artifact tier")
	blobTimeout := flag.Duration("blob-timeout", 0, "per-attempt peer artifact fetch deadline (default 2s)")
	blobMem := flag.Int("blob-mem", 0, "in-memory blob tier entry bound (default 256)")
	workers := flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	pool := flag.Int("pool", 0, "reusable sessions per module (default 2*j)")
	queue := flag.Int("queue", 0, "admission queue bound (default 256)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch coalescing window (default 200µs)")
	batchMax := flag.Int("batch-max", 0, "max units per micro-batch (default 64)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (default 15s)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM")
	traceRing := flag.Int("trace-ring", 0, "request traces retained for /v1/traces (default 64)")
	slow := flag.Duration("slow", 0, "log the span tree of requests slower than this (0 disables)")
	sloTarget := flag.Duration("slo", 0, "request-latency SLO threshold (default 50ms)")
	sloObjective := flag.Float64("slo-objective", 0, "SLO good-request fraction (default 0.99)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof")
	stats := flag.Bool("stats", false, "print batch-service counters on exit")
	flag.Parse()

	// A nil *applog.Logger degrades to plain log.Printf, so the error
	// path below is safe even though lg is nil when New rejects the
	// format value.
	lg, err := applog.New(*logFormat, "cogd")
	if err != nil {
		lg.Fatalf("cogd: %v", err)
	}
	sName, sSrc, err := loadSpec(*specName)
	if err != nil {
		lg.Fatalf("cogd: %v", err)
	}
	if *specName == "risc32" {
		*risc = true
	}
	start := time.Now()
	srv, err := server.New(server.Options{
		SpecName:           sName,
		SpecSrc:            sSrc,
		Risc:               *risc,
		Engine:             *engine,
		Workers:            *workers,
		CacheDir:           *cacheDir,
		PoolSize:           *pool,
		QueueBound:         *queue,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		DefaultDeadline:    *timeout,
		EnablePprof:        *pprofOn,
		TraceRing:          *traceRing,
		SlowThreshold:      *slow,
		SLOTarget:          *sloTarget,
		SLOObjective:       *sloObjective,
		BlobPeers:          splitPeers(*blobPeers),
		BlobMemEntries:     *blobMem,
		BlobAttemptTimeout: *blobTimeout,
		Logf:               lg.Printf,
		Logger:             lg.Slog(),
	})
	if err != nil {
		lg.Fatalf("cogd: %v", err)
	}

	// Listen before announcing: the logged address is the one actually
	// bound (":0" resolves to a real port), so scripts can scrape it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Fatalf("cogd: %v", err)
	}
	// The port distinguishes replicas in stitched cross-process traces.
	srv.SetProcess("cogd@" + ln.Addr().String())
	lg.Printf("cogd: serving %s on %s (tables ready in %v)", sName, ln.Addr(), time.Since(start).Round(time.Millisecond))
	if *pprofOn {
		lg.Printf("cogd: pprof enabled at http://%s/debug/pprof/", ln.Addr())
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		lg.Printf("cogd: %v: draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Drain(ctx); err != nil {
			lg.Printf("cogd: drain incomplete: %v", err)
		}
		srv.Close()
		if err := httpSrv.Shutdown(ctx); err != nil {
			lg.Printf("cogd: shutdown: %v", err)
		}
		cancel()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			lg.Fatalf("cogd: %v", err)
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, srv.Service().Stats.String())
	}
}

// splitPeers turns the -blob-peers flag value into a URL list.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// loadSpec resolves an embedded spec name or reads a .cogg file.
func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	case "risc32":
		return "risc32.cogg", specs.Risc32, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(b), nil
}
