package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cogg/internal/blob"
)

// runCache is the `cogg cache` subcommand: operator tooling over the
// shared on-disk artifact tier. The blob store itself is digest-keyed
// and anonymous; the index sidecar supplies the names, so `ls` is a
// join of the two, `gc` deletes what no manifest row references, and
// `verify` re-hashes every entry offline.
func runCache(args []string) {
	fs := flag.NewFlagSet("cogg cache", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `usage: cogg cache <ls|gc|verify> -dir DIR [flags]

  ls      list cached artifacts (manifest rows joined with blob state)
  gc      delete unreferenced blobs older than -min-age
  verify  re-hash every blob and cross-check the manifest

flags:
`)
		fs.PrintDefaults()
	}
	dir := fs.String("dir", "", "blob store directory (the daemon's -cache)")
	minAge := fs.Duration("min-age", time.Hour, "gc: age floor for unreferenced blobs")
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	verb := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		fatal(err)
	}
	if *dir == "" {
		fatal(fmt.Errorf("cache %s: -dir is required", verb))
	}
	store := blob.NewFS(*dir)
	switch verb {
	case "ls":
		cacheLs(store)
	case "gc":
		cacheGC(store, *minAge)
	case "verify":
		cacheVerify(store)
	default:
		fatal(fmt.Errorf("cache: unknown verb %q (ls, gc, verify)", verb))
	}
}

// cacheLs joins the manifest with the blobs on disk. Indexed rows print
// with their names; blobs no row references print as anonymous — gc
// candidates. Quarantined entries are always surfaced.
func cacheLs(store *blob.FS) {
	ix, err := blob.ReadIndex(store.Dir())
	if err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	infos, err := store.List(nil)
	if err != nil {
		fatal(err)
	}
	onDisk := map[string]blob.Info{}
	for _, in := range infos {
		onDisk[in.Key] = in
	}
	var rows int
	if ix != nil {
		for _, e := range ix.Sorted() {
			state := "MISSING"
			if _, ok := onDisk[e.Key]; ok {
				state = "ok"
				delete(onDisk, e.Key)
			}
			fmt.Printf("%-8s %-40s %-12s %8d  %s  %s\n",
				e.Kind, e.Name, e.Key[:12], e.Size, e.Updated.Format("2006-01-02 15:04"), state)
			rows++
		}
	}
	for _, in := range onDisk {
		fmt.Printf("%-8s %-40s %-12s %8d  %-16s  %s\n",
			"blob", "(unreferenced)", in.Key[:12], in.Size, "", "no manifest row")
		rows++
	}
	for _, q := range store.QuarantineFiles() {
		fmt.Printf("%-8s %-40s %s\n", "QUARANT", q, "held for inspection")
		rows++
	}
	fmt.Printf("%d entries\n", rows)
}

func cacheGC(store *blob.FS, minAge time.Duration) {
	res, err := blob.GC(store, minAge)
	if err != nil {
		fatal(err)
	}
	for _, k := range res.Deleted {
		fmt.Printf("deleted %s\n", k[:12])
	}
	fmt.Printf("gc: %d deleted (%d bytes), %d referenced kept, %d young kept, %d quarantined held\n",
		len(res.Deleted), res.BytesFreed, res.KeptRef, len(res.KeptYoung), len(res.Quarantined))
}

func cacheVerify(store *blob.FS) {
	res, err := blob.Verify(store)
	if err != nil {
		fatal(err)
	}
	for _, k := range res.Bad {
		fmt.Printf("BAD %s (quarantined)\n", k[:12])
	}
	for _, d := range res.IndexDrift {
		fmt.Printf("DRIFT %s\n", d)
	}
	fmt.Printf("verify: %d checked, %d bad, %d manifest drift\n",
		res.Checked, len(res.Bad), len(res.IndexDrift))
	if len(res.Bad) > 0 || len(res.IndexDrift) > 0 {
		os.Exit(1)
	}
}
