// Command cogg is the code generator generator: it accepts a code
// generator specification and produces the driving tables, reporting the
// statistics of the paper's Tables 1 and 2.
//
// Usage:
//
//	cogg [flags] [spec-file]
//	cogg explain [flags] [input-file]
//	cogg emit-go -o DIR [flags]
//	cogg cache <ls|gc|verify> -dir DIR
//	cogg trace -targets URL[,URL...] [-id TRACE-ID]
//
// Without a spec file the built-in Amdahl 470 specification is used; the
// names "amdahl470", "amdahl-minimal", and "risc32" select the other
// built-ins.
//
// The explain subcommand translates one unit with derivation recording
// on and prints, per emitted instruction, the production whose
// reduction emitted it, the template (index and specification line),
// the operand sources, and the register moves — the paper's
// inspectability claim made executable. See `cogg explain -h`.
//
// The emit-go subcommand compiles the tables away: it generates a
// self-contained Go package implementing the specification's translator
// as code (switch-threaded parser, reduction sites with the templates
// inlined) that produces byte-identical output to the interpreted
// engine. See `cogg emit-go -h`.
//
// The cache subcommand administers the shared on-disk artifact tier
// (the daemon's -cache directory): ls joins the manifest sidecar with
// the blobs on disk, gc deletes unreferenced blobs past an age floor,
// and verify re-hashes every entry and reports manifest drift. See
// `cogg cache -h`.
//
// The trace subcommand collects one request's trace fragments from
// every fleet process (/v1/traces?id= on the front and the replicas),
// stitches them into a single cross-process timeline by span ID, and
// prints the tree — hedged attempts, breaker rejections, failovers, and
// peer blob fetches included. See `cogg trace -h`.
//
//	-stats      print Table 1 (grammar and parse table statistics), plus
//	            the batch-service counters when -cache is in use
//	-sizes      print Table 2 (artifact sizes in 4096-byte pages)
//	-conflicts  print resolved parse conflicts
//	-check      report structural table diagnostics
//	-state N    describe automaton state N
//	-o FILE     write the serialized table module
//	-cache DIR  publish the table module into the shared on-disk cache,
//	            keyed by content hash of the specification — the offline
//	            step that lets later ifcgen/pascal370 runs warm-start
//	            without reconstructing the SLR tables
//	-cpuprofile FILE  write a CPU profile (phase-labelled: tablebuild)
//	-memprofile FILE  write an allocation profile on exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"cogg/internal/asm"
	"cogg/internal/batch"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/driver"
	"cogg/internal/emitgo"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/lr"
	"cogg/internal/profiling"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/internal/tables"
	"cogg/specs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "emit-go" {
		runEmitGo(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cache" {
		runCache(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	stats := flag.Bool("stats", true, "print Table 1 statistics")
	sizes := flag.Bool("sizes", false, "print Table 2 sizes (pages)")
	conflicts := flag.Bool("conflicts", false, "print resolved conflicts")
	check := flag.Bool("check", false, "report structural table diagnostics")
	state := flag.Int("state", -1, "describe one automaton state")
	out := flag.String("o", "", "write the serialized table module to this file")
	cacheDir := flag.String("cache", "", "publish the table module into this cache directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	name, src, err := loadSpec(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var cg *core.CodeGenerator
	profiling.Phase("tablebuild", func() {
		cg, err = core.Generate(name, src)
	})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("Table 1 — %s\n%s\n", name, cg.Table1())
	}
	if *sizes {
		t2, err := cg.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Table 2 — %s (sizes in pages)\n%s\n", name, t2)
	}
	if *conflicts {
		for _, c := range cg.Table.Conflicts {
			kind := "shift/reduce -> shift"
			if c.Kind == lr.ReduceReduce {
				kind = "reduce/reduce -> longest"
			}
			fmt.Printf("state %4d on %-16s %s (chosen %v over %v)\n",
				c.State, cg.Automaton.SymName(c.Sym), kind, c.Chosen, c.Losers)
		}
		fmt.Printf("%d conflicts resolved\n", len(cg.Table.Conflicts))
	}
	if *check {
		issues := lr.CheckTable(cg.Table)
		for _, is := range issues {
			fmt.Printf("state %4d: %s\n", is.State, is.Msg)
		}
		fmt.Printf("%d diagnostics\n", len(issues))
	}
	if *state >= 0 {
		if *state >= len(cg.Automaton.States) {
			fatal(fmt.Errorf("state %d out of range (automaton has %d states)", *state, len(cg.Automaton.States)))
		}
		fmt.Print(cg.Automaton.Describe(*state))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sz, err := cg.Encode(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes (%.1f pages; templates %.1f, compressed table %.1f)\n",
			*out, sz.Total, tables.Pages(sz.Total), tables.Pages(sz.Templates), tables.Pages(sz.Compressed))
	}
	if *cacheDir != "" {
		svc := batch.New(batch.Options{CacheDir: *cacheDir})
		if err := svc.Store(name, src, cg.Module()); err != nil {
			fatal(err)
		}
		fmt.Printf("cached table module %s under %s\n", batch.Key(name, src)[:12], *cacheDir)
		if *stats {
			fmt.Print(svc.Stats.String())
		}
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
}

// runExplain is the `cogg explain` subcommand: translate one unit with
// derivation recording and print the instruction -> production map.
func runExplain(args []string) {
	fs := flag.NewFlagSet("cogg explain", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `usage: cogg explain [flags] [input-file]

Translate one unit with derivation recording and print, per emitted
instruction, the production, template, operand sources, and register
moves that produced it. Reads whitespace-separated prefix-IF tokens
from the file or standard input; -pascal compiles Pascal source through
the front end first. A blocked parse prints the partial derivation
recorded up to the block, then the diagnostics, and exits nonzero.

`)
		fs.PrintDefaults()
	}
	spec := fs.String("spec", "amdahl470", "code generator specification (amdahl470, amdahl-minimal, risc32, or a path)")
	risc := fs.Bool("risc", false, "use the risc32 target configuration")
	pascalIn := fs.Bool("pascal", false, "input is Pascal source, not prefix-IF")
	listing := fs.Bool("S", false, "print the assembly listing before the derivation")
	engine := fs.String("engine", "interpreted", "translation engine; only interpreted records derivations")
	fs.Parse(args)
	if fs.NArg() > 1 {
		fatal(fmt.Errorf("explain takes one input file (or standard input)"))
	}
	if *engine != "interpreted" {
		fatal(codegen.ErrProvenanceUnsupported)
	}

	specName, specSrc, err := loadSpec(*spec)
	if err != nil {
		fatal(err)
	}
	cfg := rt370.Config()
	if *risc {
		cfg = driver.RiscConfig()
	}
	tgt, err := driver.NewTargetWithConfig(specName, specSrc, cfg)
	if err != nil {
		fatal(err)
	}

	unitName, text := "explain", ""
	if fs.NArg() == 1 {
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		unitName, text = fs.Arg(0), string(b)
	} else {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	}

	var prog *asm.Program
	var prov []codegen.ProvEntry
	var genErr error
	if *pascalIn {
		prog, prov, _, genErr = tgt.ExplainSource(unitName, text, shaper.Options{StatementRecords: true})
	} else {
		toks, err := ir.ParseTokens(text)
		if err != nil {
			fatal(err)
		}
		prog, prov, _, genErr = tgt.Explain(unitName, toks)
	}
	if *listing && genErr == nil && prog != nil {
		if err := labels.Layout(prog, tgt.Machine); err != nil {
			fatal(err)
		}
		fmt.Print(asm.Listing(prog, tgt.Machine))
		fmt.Println()
	}
	fmt.Print(codegen.FormatProvenance(prov))
	if genErr != nil {
		fmt.Fprintf(os.Stderr, "cogg explain: %s: %v\n", unitName, genErr)
		os.Exit(1)
	}
}

// runEmitGo is the `cogg emit-go` subcommand: compile a specification's
// tables into a generated Go package.
func runEmitGo(args []string) {
	fs := flag.NewFlagSet("cogg emit-go", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `usage: cogg emit-go -o DIR [flags]

Generate a self-contained Go package implementing the specification's
translator as code: the packed action table lowered to switch
statements, each production's templates and semantic operators inlined
at its reduction site, and the translation semantics shared with the
interpreter through codegen.EmitRT — so the generated engine produces
byte-identical programs and identical structured errors, minus the
table-interpretation overhead.

`)
		fs.PrintDefaults()
	}
	spec := fs.String("spec", "amdahl470", "code generator specification (amdahl470, amdahl-minimal, risc32, or a path)")
	outDir := fs.String("o", "", "output directory for the generated package (required)")
	pkg := fs.String("pkg", "", "generated package name (default: base name of -o)")
	risc := fs.Bool("risc", false, "validate against the risc32 target configuration")
	noReg := fs.Bool("no-register", false, "omit the init() self-registration hook")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatal(fmt.Errorf("emit-go takes no positional arguments (use -spec)"))
	}
	if *outDir == "" {
		fatal(fmt.Errorf("emit-go needs -o DIR"))
	}
	if *pkg == "" {
		*pkg = filepath.Base(*outDir)
	}

	specName, specSrc, err := loadSpec(*spec)
	if err != nil {
		fatal(err)
	}
	cfg := rt370.Config()
	if *risc {
		cfg = driver.RiscConfig()
	}
	cg, err := core.Generate(specName, specSrc)
	if err != nil {
		fatal(err)
	}
	files, err := emitgo.Emit(cg.Module(), cfg, emitgo.Options{
		Package:    *pkg,
		SpecName:   specName,
		SpecSHA256: codegen.SpecSHA256([]byte(specSrc)),
		NoRegister: *noReg,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o777); err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(*outDir, name), files[name], 0o666); err != nil {
			fatal(err)
		}
		total += len(files[name])
	}
	fmt.Printf("emitted package %s from %s: %d files, %d bytes\n", *pkg, specName, len(files), total)
}

func loadSpec(arg string) (string, string, error) {
	switch arg {
	case "", "amdahl470":
		return "amdahl470.cogg", specs.Amdahl470, nil
	case "amdahl-minimal", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, nil
	case "risc32":
		return "risc32.cogg", specs.Risc32, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	// Name the spec by its base name, not the argument path: the name is
	// part of the table-module cache key, and `cogg specs/amdahl470.cogg`
	// must publish the same key that ifcgen/pascal370 look up for the
	// built-in "amdahl470.cogg".
	return filepath.Base(arg), string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cogg:", err)
	os.Exit(1)
}
