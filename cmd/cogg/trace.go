package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cogg/internal/obs"
)

// runTrace implements `cogg trace`: fan a /v1/traces query out across
// fleet processes (front and replicas), stitch the per-process
// fragments of one trace ID into a single cross-process timeline, and
// render it as an indented tree (or JSON with -json). Without -id it
// lists the trace IDs each target currently retains, so an ID can be
// picked for stitching.
func runTrace(args []string) {
	fs := flag.NewFlagSet("cogg trace", flag.ExitOnError)
	targets := fs.String("targets", "", "comma-separated fleet base URLs to collect fragments from (front and replicas)")
	id := fs.String("id", "", "trace ID to stitch; empty lists recent trace IDs per target")
	n := fs.Int("n", 10, "recent traces listed per target when no -id is given")
	jsonOut := fs.Bool("json", false, "emit the stitched trace as JSON instead of a tree")
	minProcs := fs.Int("min-procs", 0, "fail unless the stitched trace spans at least this many processes")
	timeout := fs.Duration("timeout", 5*time.Second, "per-target collection deadline")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cogg trace -targets URL[,URL...] [-id TRACE-ID] [-n N] [-json] [-min-procs N]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimRight(t, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "cogg trace: -targets is required (comma-separated fleet base URLs)")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	if *id == "" {
		listTraces(client, urls, *n)
		return
	}

	// Collect every target's fragments for the trace. A target that is
	// down or never saw the trace contributes nothing; stitching works
	// from whatever subset answered (missing parents become orphans).
	var frags []*obs.TraceData
	for _, u := range urls {
		got, err := fetchTraces(client, u+"/v1/traces?id="+*id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cogg trace: %s: %v (skipping)\n", u, err)
			continue
		}
		frags = append(frags, got...)
	}
	if len(frags) == 0 {
		fmt.Fprintf(os.Stderr, "cogg trace: no fragments for trace %s on any target\n", *id)
		os.Exit(1)
	}

	st := obs.Stitch(frags)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(st.Tree())
	}
	if len(st.Processes) < *minProcs {
		fmt.Fprintf(os.Stderr, "cogg trace: trace %s spans %d process(es), want >= %d\n",
			st.ID, len(st.Processes), *minProcs)
		os.Exit(1)
	}
}

// listTraces prints the trace IDs each target retains, newest first —
// enough to pick an -id for stitching.
func listTraces(client *http.Client, urls []string, n int) {
	for _, u := range urls {
		got, err := fetchTraces(client, fmt.Sprintf("%s/v1/traces?n=%d", u, n))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cogg trace: %s: %v (skipping)\n", u, err)
			continue
		}
		fmt.Printf("%s: %d trace(s)\n", u, len(got))
		// A ring holds several fragments of one trace (retries); collapse
		// to one line per ID, keeping the first (newest) fragment's shape.
		seen := map[string]bool{}
		ids := make([]string, 0, len(got))
		byID := map[string]*obs.TraceData{}
		for _, td := range got {
			if td == nil || seen[td.ID] {
				continue
			}
			seen[td.ID] = true
			ids = append(ids, td.ID)
			byID[td.ID] = td
		}
		sort.SliceStable(ids, func(i, j int) bool {
			return byID[ids[i]].Begin.After(byID[ids[j]].Begin)
		})
		for _, tid := range ids {
			td := byID[tid]
			line := fmt.Sprintf("  %s  %-24s %v spans=%d", td.ID, td.Name,
				time.Duration(td.DurNS).Round(time.Microsecond), len(td.Spans))
			if td.Failure != "" {
				line += " failure=" + td.Failure
			}
			fmt.Println(line)
		}
	}
}

// fetchTraces GETs one /v1/traces URL and decodes the {"traces":[...]}
// payload shared by cogd and cogdfront.
func fetchTraces(client *http.Client, url string) ([]*obs.TraceData, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var payload struct {
		Traces []*obs.TraceData `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Traces, nil
}
