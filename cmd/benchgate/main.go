// Command benchgate is the benchmark-regression gate: it parses `go
// test -bench` output, records the results as JSON, and compares them
// against a committed baseline, failing when a benchmark regressed past
// tolerance.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchgate [flags] [results-file]
//
// Without a results file the benchmark output is read from standard
// input.
//
//	-baseline FILE  baseline JSON to compare against (and the file
//	                -update rewrites)
//	-o FILE         write the measured results as JSON (the BENCH
//	                artifact a CI run uploads)
//	-update         rewrite the baseline from the measured results
//	                instead of comparing
//	-ns-tol F       allowed fractional ns/op regression (default 0.10;
//	                CI uses a larger value because absolute times do
//	                not transfer between machines)
//	-alloc-tol F    allowed fractional allocs/op regression (default
//	                0.10). allocs/op is machine-independent, so this
//	                gate is the sharp one — and a baseline of zero
//	                allocations admits no regression at all.
//
// With -count > 1 the best (minimum) ns/op and the worst (maximum)
// allocs/op and B/op per benchmark are kept: time noise is one-sided
// slow, allocation noise is one-sided high.
//
// Beyond the fractional tolerances, a baseline entry may carry gate
// annotations: "note" (a per-benchmark comparison note echoed with any
// failure), "max_bytes_per_op" (an absolute B/op ceiling), and
// "faster_than" (the name of a sibling benchmark this one must
// strictly beat on ns/op within the same run — machine-independent
// where absolute ns/op is not). -update preserves the annotations of
// an existing baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurement. The last three fields are
// baseline-only gate annotations: measured results never carry them,
// but a baseline entry may, and compare enforces them.
type Entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	// Note is a per-benchmark comparison note: it explains what this
	// entry gates and is echoed with any failure it produces.
	Note string `json:"note,omitempty"`
	// MaxBytesPerOp is an absolute B/op ceiling. Unlike the fractional
	// allocs tolerance it gates benchmarks whose baseline bytes are
	// nonzero but must stay bounded (a zero-alloc baseline already
	// admits nothing).
	MaxBytesPerOp float64 `json:"max_bytes_per_op,omitempty"`
	// FasterThan names a sibling benchmark this one must strictly beat
	// on ns/op in the same measured run. Both run on the same machine,
	// so the comparison is machine-independent where absolute ns/op is
	// not — it pins relative wins (e.g. the emitted engine beating the
	// interpreted one) that a wide ns tolerance cannot.
	FasterThan string `json:"faster_than,omitempty"`
}

// File is the JSON shape of both the baseline and the results artifact.
type File struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	out := flag.String("o", "", "write measured results to this JSON file")
	update := flag.Bool("update", false, "rewrite the baseline instead of comparing")
	nsTol := flag.Float64("ns-tol", 0.10, "allowed fractional ns/op regression")
	allocTol := flag.Float64("alloc-tol", 0.10, "allowed fractional allocs/op regression")
	note := flag.String("note", "", "note stored in written JSON files")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}
	for _, name := range sortedNames(got) {
		e := got[name]
		fmt.Printf("%-60s %14.0f ns/op %10.0f allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}
	if *out != "" {
		if err := writeFile(*out, &File{Note: *note, Benchmarks: got}); err != nil {
			fatal(err)
		}
	}
	if *update {
		if *baseline == "" {
			fatal(fmt.Errorf("-update requires -baseline"))
		}
		// A rewritten baseline keeps the previous one's gate
		// annotations: they are curated by hand, not measured.
		if prev, err := readFile(*baseline); err == nil {
			for name, e := range got {
				if pb, ok := prev.Benchmarks[name]; ok {
					e.Note = pb.Note
					e.MaxBytesPerOp = pb.MaxBytesPerOp
					e.FasterThan = pb.FasterThan
					got[name] = e
				}
			}
		}
		if err := writeFile(*baseline, &File{Note: *note, Benchmarks: got}); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline %s updated (%d benchmarks)\n", *baseline, len(got))
		return
	}
	if *baseline == "" {
		return
	}
	base, err := readFile(*baseline)
	if err != nil {
		fatal(err)
	}
	problems := compare(base.Benchmarks, got, *nsTol, *allocTol)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance of %s\n", len(base.Benchmarks), *baseline)
}

// parseBench reads `go test -bench` output: one entry per benchmark
// name (GOMAXPROCS suffix stripped), keeping min ns/op and max
// allocs/op across repeated lines.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Metrics: map[string]float64{}}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp, ok = v, true
			case "allocs/op":
				e.AllocsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			default:
				e.Metrics[unit] = v
			}
		}
		if !ok {
			continue
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		if prev, seen := out[name]; seen {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp > e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > e.BytesPerOp {
				e.BytesPerOp = prev.BytesPerOp
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

// compare reports every baseline benchmark that regressed (or is
// missing from the measured set). A baseline entry's Note is echoed
// with each of its failures so the gate explains itself.
func compare(base, got map[string]Entry, nsTol, allocTol float64) []string {
	var problems []string
	for _, name := range sortedNames(base) {
		b := base[name]
		fail := func(format string, args ...any) {
			p := name + ": " + fmt.Sprintf(format, args...)
			if b.Note != "" {
				p += " [" + b.Note + "]"
			}
			problems = append(problems, p)
		}
		g, ok := got[name]
		if !ok {
			fail("in baseline but not measured")
			continue
		}
		if limit := b.NsPerOp * (1 + nsTol); b.NsPerOp > 0 && g.NsPerOp > limit {
			fail("%.0f ns/op exceeds baseline %.0f by more than %.0f%%",
				g.NsPerOp, b.NsPerOp, nsTol*100)
		}
		switch {
		case b.AllocsPerOp == 0 && g.AllocsPerOp > 0:
			fail("%.0f allocs/op where baseline allocates nothing", g.AllocsPerOp)
		case g.AllocsPerOp > b.AllocsPerOp*(1+allocTol):
			fail("%.0f allocs/op exceeds baseline %.0f by more than %.0f%%",
				g.AllocsPerOp, b.AllocsPerOp, allocTol*100)
		}
		if b.MaxBytesPerOp > 0 && g.BytesPerOp > b.MaxBytesPerOp {
			fail("%.0f B/op exceeds ceiling %.0f", g.BytesPerOp, b.MaxBytesPerOp)
		}
		if b.FasterThan != "" {
			rival, measured := got[b.FasterThan]
			switch {
			case !measured:
				fail("must beat %s, which was not measured in this run", b.FasterThan)
			case g.NsPerOp >= rival.NsPerOp:
				fail("%.0f ns/op is not strictly below %s's %.0f",
					g.NsPerOp, b.FasterThan, rival.NsPerOp)
			}
		}
	}
	return problems
}

func sortedNames(m map[string]Entry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
