package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cogg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCodeGenerationRate-8   	   45090	     26094 ns/op	   6751349 IF_tokens/s	   2263625 instructions/s	       0 B/op	       0 allocs/op
BenchmarkTableConstruction-8    	      58	  19726103 ns/op	 8302781 B/op	   46062 allocs/op
BenchmarkBatchThroughput/cache=warm/workers=4-8 	     100	  11894916 ns/op	        13.45 table_load_ms	      1345 units/s
PASS
ok  	cogg	10.5s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	cg := got["BenchmarkCodeGenerationRate"]
	if cg.NsPerOp != 26094 || cg.AllocsPerOp != 0 {
		t.Errorf("CodeGenerationRate = %+v", cg)
	}
	if cg.Metrics["IF_tokens/s"] != 6751349 {
		t.Errorf("IF_tokens/s metric = %v", cg.Metrics["IF_tokens/s"])
	}
	tc := got["BenchmarkTableConstruction"]
	if tc.AllocsPerOp != 46062 || tc.BytesPerOp != 8302781 {
		t.Errorf("TableConstruction = %+v", tc)
	}
	bt := got["BenchmarkBatchThroughput/cache=warm/workers=4"]
	if bt.NsPerOp != 11894916 {
		t.Errorf("BatchThroughput = %+v", bt)
	}
}

// TestParseBenchKeepsBestOfRepeats: with -count > 1, minimum ns/op and
// maximum allocs/op survive.
func TestParseBenchKeepsBestOfRepeats(t *testing.T) {
	in := `BenchmarkX-8 100 2000 ns/op 5 allocs/op
BenchmarkX-8 100 1000 ns/op 7 allocs/op
BenchmarkX-8 100 3000 ns/op 6 allocs/op
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkX"]
	if e.NsPerOp != 1000 {
		t.Errorf("ns/op = %v, want min 1000", e.NsPerOp)
	}
	if e.AllocsPerOp != 7 {
		t.Errorf("allocs/op = %v, want max 7", e.AllocsPerOp)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 10},
	}

	// Everything within tolerance.
	got := map[string]Entry{
		"BenchmarkA": {NsPerOp: 1050, AllocsPerOp: 105},
		"BenchmarkB": {NsPerOp: 900, AllocsPerOp: 0},
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 10},
	}
	if p := compare(base, got, 0.10, 0.10); len(p) != 0 {
		t.Errorf("clean run reported problems: %v", p)
	}

	// ns/op regression past tolerance.
	got["BenchmarkA"] = Entry{NsPerOp: 1200, AllocsPerOp: 100}
	if p := compare(base, got, 0.10, 0.10); len(p) != 1 || !strings.Contains(p[0], "BenchmarkA") {
		t.Errorf("ns regression not caught: %v", p)
	}
	got["BenchmarkA"] = Entry{NsPerOp: 1000, AllocsPerOp: 100}

	// A zero-alloc baseline admits no allocations at all.
	got["BenchmarkB"] = Entry{NsPerOp: 900, AllocsPerOp: 1}
	if p := compare(base, got, 0.10, 0.10); len(p) != 1 || !strings.Contains(p[0], "allocates nothing") {
		t.Errorf("zero-alloc regression not caught: %v", p)
	}
	got["BenchmarkB"] = Entry{NsPerOp: 900, AllocsPerOp: 0}

	// allocs/op regression past tolerance.
	got["BenchmarkC"] = Entry{NsPerOp: 1000, AllocsPerOp: 12}
	if p := compare(base, got, 0.10, 0.10); len(p) != 1 || !strings.Contains(p[0], "BenchmarkC") {
		t.Errorf("alloc regression not caught: %v", p)
	}
	got["BenchmarkC"] = Entry{NsPerOp: 1000, AllocsPerOp: 10}

	// A baseline benchmark the run never measured fails the gate.
	delete(got, "BenchmarkC")
	if p := compare(base, got, 0.10, 0.10); len(p) != 1 || !strings.Contains(p[0], "not measured") {
		t.Errorf("missing benchmark not caught: %v", p)
	}
}

// TestCompareAnnotations covers the baseline gate annotations: the B/op
// ceiling, the cross-benchmark faster_than comparison, and the note
// echoed with failures.
func TestCompareAnnotations(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkSlow": {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkFast": {NsPerOp: 700, AllocsPerOp: 0,
			FasterThan: "BenchmarkSlow", Note: "the emitted engine must beat the interpreter"},
		"BenchmarkMem": {NsPerOp: 1000, AllocsPerOp: 50, MaxBytesPerOp: 4096},
	}

	got := map[string]Entry{
		"BenchmarkSlow": {NsPerOp: 2000, AllocsPerOp: 0},
		"BenchmarkFast": {NsPerOp: 1500, AllocsPerOp: 0},
		"BenchmarkMem":  {NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 4000},
	}
	// Both halves slowed in lockstep (a slower machine): the wide ns
	// tolerance admits it and the relative gate still holds.
	if p := compare(base, got, 3.0, 0.10); len(p) != 0 {
		t.Errorf("clean annotated run reported problems: %v", p)
	}

	// The fast benchmark no longer strictly beats its rival; the note
	// rides along with the failure.
	got["BenchmarkFast"] = Entry{NsPerOp: 2000, AllocsPerOp: 0}
	p := compare(base, got, 3.0, 0.10)
	if len(p) != 1 || !strings.Contains(p[0], "not strictly below") {
		t.Errorf("faster_than violation not caught: %v", p)
	}
	if !strings.Contains(p[0], "must beat the interpreter") {
		t.Errorf("note not echoed with failure: %v", p)
	}
	got["BenchmarkFast"] = Entry{NsPerOp: 1500, AllocsPerOp: 0}

	// faster_than against a benchmark missing from the run.
	delete(got, "BenchmarkSlow")
	if p := compare(base, got, 3.0, 0.10); len(p) != 2 { // missing + unmeasured rival
		t.Errorf("unmeasured rival not caught: %v", p)
	}
	got["BenchmarkSlow"] = Entry{NsPerOp: 2000, AllocsPerOp: 0}

	// B/op ceiling.
	got["BenchmarkMem"] = Entry{NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 5000}
	if p := compare(base, got, 3.0, 0.10); len(p) != 1 || !strings.Contains(p[0], "exceeds ceiling") {
		t.Errorf("bytes ceiling violation not caught: %v", p)
	}
}

// TestParseBenchKeepsMaxBytes: B/op merges like allocs/op — worst of
// the repeats.
func TestParseBenchKeepsMaxBytes(t *testing.T) {
	in := `BenchmarkX-8 100 2000 ns/op 100 B/op 5 allocs/op
BenchmarkX-8 100 1000 ns/op 300 B/op 5 allocs/op
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e := got["BenchmarkX"]; e.BytesPerOp != 300 {
		t.Errorf("B/op = %v, want max 300", e.BytesPerOp)
	}
}
