// Command ifsynth mass-produces valid-by-construction prefix-IF
// programs by random-walking a code generator specification's SLR
// tables through the grammar oracle (internal/oracle). The parse table
// already knows, in every state, exactly which IF symbols may come
// next; ifsynth turns that knowledge into a corpus factory for the
// fuzz, differential, and load suites.
//
// Every program is verified through a full code generation session
// before it is emitted, rejected programs are regenerated, and any
// reachable production the random walk misses is targeted with a
// minimal-derivation witness program — so a successful run certifies
// 100% coverage of the specification's reachable productions. The walk
// is deterministic given -seed: same seed, same corpus, byte for byte.
//
// Usage:
//
//	ifsynth [flags]
//
//	-spec NAME    specification: amdahl470 (default), amdahl-minimal,
//	              or risc32 (embedded specs only)
//	-seed N       PRNG seed (default 42); the corpus is a pure function
//	              of (spec, seed, n, budgets)
//	-n N          programs to generate (default 100); witness programs
//	              for walk-missed productions are appended beyond n
//	-out DIR      write programs as DIR/<spec>-<seed>-NNNNN.if; without
//	              it, programs go to standard output one per line
//	-fuzz-out DIR write Go fuzz seed-corpus files under
//	              DIR/FuzzGenerate (the programs as IF text) and
//	              DIR/FuzzSpecParse (specification sources whose
//	              production section is rebuilt from walked programs),
//	              in "go test fuzz v1" encoding
//	-max-tokens N soft token budget per program (default 96)
//	-max-stmts N  statement budget per program (default 12)
//	-max-depth N  parse-stack depth budget (default 10)
//	-verify       verify each program through a codegen session
//	              (default true; -verify=false trusts the walk)
//	-q            suppress the per-spec coverage report
//
// Exit status is nonzero when generation fails or when any reachable
// production stays uncovered, so CI can gate on full coverage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cogg/internal/core"
	"cogg/internal/driver"
	"cogg/internal/ir"
	"cogg/internal/oracle"
	"cogg/internal/rt370"
	"cogg/specs"
)

func main() {
	var (
		specName  = flag.String("spec", "amdahl470", "specification: amdahl470, amdahl-minimal, or risc32")
		seed      = flag.Int64("seed", 42, "PRNG seed; the corpus is deterministic given it")
		n         = flag.Int("n", 100, "programs to generate (witnesses appended beyond n)")
		outDir    = flag.String("out", "", "write programs as files under this directory")
		fuzzOut   = flag.String("fuzz-out", "", "write Go fuzz seed-corpus files under this directory")
		maxTokens = flag.Int("max-tokens", 0, "soft token budget per program (default 96)")
		maxStmts  = flag.Int("max-stmts", 0, "statement budget per program (default 12)")
		maxDepth  = flag.Int("max-depth", 0, "parse-stack depth budget (default 10)")
		verify    = flag.Bool("verify", true, "verify each program through a codegen session")
		quiet     = flag.Bool("q", false, "suppress the coverage report")
	)
	flag.Parse()
	if err := run(*specName, *seed, *n, *outDir, *fuzzOut, *maxTokens, *maxStmts, *maxDepth, *verify, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "ifsynth:", err)
		os.Exit(1)
	}
}

func run(specName string, seed int64, n int, outDir, fuzzOut string, maxTokens, maxStmts, maxDepth int, verify, quiet bool) error {
	name, src, risc, err := resolveSpec(specName)
	if err != nil {
		return err
	}
	cg, err := core.Generate(name, src)
	if err != nil {
		return err
	}
	cfg := rt370.Config()
	if risc {
		cfg = driver.RiscConfig()
	}
	o := oracle.New(cg.Module())

	opts := oracle.CorpusOptions{
		Walk: oracle.WalkConfig{
			MaxTokens:     maxTokens,
			MaxStatements: maxStmts,
			MaxDepth:      maxDepth,
		},
	}
	if p := oracle.DefaultPriming(name); p != "" {
		toks, err := ir.ParseTokens(p)
		if err != nil {
			return fmt.Errorf("default priming for %s: %w", name, err)
		}
		opts.Walk.Priming = toks
	}
	if verify {
		gen, err := cg.NewGenerator(cfg)
		if err != nil {
			return err
		}
		ses, err := gen.NewSession()
		if err != nil {
			return err
		}
		opts.Verify = func(toks []ir.Token) ([]int, error) {
			_, res, err := ses.Generate("ifsynth", toks)
			if err != nil {
				return nil, err
			}
			return append([]int(nil), res.ProdCounts...), nil
		}
	}

	c, err := oracle.Generate(o, seed, n, opts)
	if err != nil {
		return err
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		base := strings.TrimSuffix(name, ".cogg")
		for i, toks := range c.Programs {
			path := filepath.Join(outDir, fmt.Sprintf("%s-%d-%05d.if", base, seed, i))
			if err := os.WriteFile(path, []byte(ir.FormatTokens(toks)+"\n"), 0o644); err != nil {
				return err
			}
		}
	} else {
		for _, toks := range c.Programs {
			fmt.Println(ir.FormatTokens(toks))
		}
	}
	if fuzzOut != "" {
		if err := writeFuzzSeeds(fuzzOut, name, seed, src, c.Programs); err != nil {
			return err
		}
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "%s seed=%d: %d programs, coverage %d/%d reachable productions (%d total, %d dead)\n",
			name, seed, len(c.Programs), c.Report.Covered, c.Report.Reachable, c.Report.Total, len(c.Report.Dead))
	}
	if !c.Report.Full() {
		return fmt.Errorf("%d reachable productions uncovered:\n%s",
			len(c.Report.Uncovered), strings.Join(c.Report.Uncovered, "\n"))
	}
	return nil
}

func resolveSpec(spec string) (name, src string, risc bool, err error) {
	switch spec {
	case "amdahl470", "amdahl470.cogg":
		return "amdahl470.cogg", specs.Amdahl470, false, nil
	case "amdahl-minimal", "amdahl-minimal.cogg", "minimal":
		return "amdahl-minimal.cogg", specs.AmdahlMinimal, false, nil
	case "risc32", "risc32.cogg":
		return "risc32.cogg", specs.Risc32, true, nil
	}
	return "", "", false, fmt.Errorf("unknown spec %q (amdahl470, amdahl-minimal, risc32)", spec)
}

// writeFuzzSeeds emits Go seed-corpus files ("go test fuzz v1", one
// quoted string) for the two string-typed fuzz targets: FuzzGenerate
// seeds are the programs themselves; FuzzSpecParse seeds are
// specification sources whose production section is rebuilt from
// walked statements, exercising the spec parser on grammar-shaped
// right sides it has never seen.
func writeFuzzSeeds(dir, specName string, seed int64, specSrc string, programs [][]ir.Token) error {
	base := strings.TrimSuffix(specName, ".cogg")
	genDir := filepath.Join(dir, "FuzzGenerate")
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return err
	}
	limit := len(programs)
	if limit > 16 {
		limit = 16 // seeds steer the fuzzer; bulk lives in -out corpora
	}
	for i := 0; i < limit; i++ {
		path := filepath.Join(genDir, fmt.Sprintf("ifsynth-%s-%d-%03d", base, seed, i))
		if err := os.WriteFile(path, fuzzSeed(ir.FormatTokens(programs[i])), 0o644); err != nil {
			return err
		}
	}

	specDir := filepath.Join(dir, "FuzzSpecParse")
	if err := os.MkdirAll(specDir, 0o755); err != nil {
		return err
	}
	for i, mutated := range mutatedSpecs(specSrc, programs) {
		path := filepath.Join(specDir, fmt.Sprintf("ifsynth-%s-%d-%03d", base, seed, i))
		if err := os.WriteFile(path, fuzzSeed(mutated), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// fuzzSeed encodes one string in the Go fuzzing seed-corpus format.
func fuzzSeed(s string) []byte {
	return []byte("go test fuzz v1\n" + fmt.Sprintf("string(%q)\n", s))
}

// mutatedSpecs grafts walked statements onto the specification's
// production section: each seed keeps the declaration sections intact
// and declares a handful of generated statements as lambda productions
// with a trivial template, so the spec parser sees syntactically fresh
// but grammar-shaped production lines.
func mutatedSpecs(specSrc string, programs [][]ir.Token) []string {
	marker := "$Productions"
	idx := strings.Index(specSrc, marker)
	if idx < 0 || len(programs) == 0 {
		return nil
	}
	head := specSrc[:idx+len(marker)]
	var out []string
	for i := 0; i < len(programs) && i < 4; i++ {
		var b strings.Builder
		b.WriteString(head)
		b.WriteString("\n")
		for _, stmt := range splitStatements(programs[i]) {
			fmt.Fprintf(&b, "\nlambda ::= %s\n nopr 0\n", stmt)
		}
		out = append(out, b.String())
	}
	return out
}

// splitStatements renders a program one statement-lead-to-statement-
// lead slice per line, approximating statement boundaries by the
// operators that may begin one (good enough for parser seeds, which
// need shape, not validity).
func splitStatements(toks []ir.Token) []string {
	var stmts []string
	start := 0
	for i := 1; i < len(toks); i++ {
		switch toks[i].Sym {
		case "assign", "branch_op", "label_def", "statement", "abort_op", "procedure_call":
			stmts = append(stmts, ir.FormatTokens(toks[start:i]))
			start = i
		}
	}
	stmts = append(stmts, ir.FormatTokens(toks[start:]))
	return stmts
}
