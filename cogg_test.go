package cogg_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"testing"

	"cogg"
	"cogg/specs"
)

// Example demonstrates the whole system in a dozen lines: build a code
// generator from the full Amdahl 470 specification, compile a Pascal
// program with it, and execute the object module on the simulator.
func Example() {
	target, err := cogg.NewS370Target("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}
	program, err := target.CompilePascal("sum.pas", `
program sum;
var i, total: integer;
begin
  total := 0;
  for i := 1 to 100 do total := total + i
end.
`, cogg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := program.Run(nil, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := result.Int("total")
	fmt.Println("total =", total)
	// Output: total = 5050
}

// ExampleGenerateTables shows the table constructor's statistics.
func ExampleGenerateTables() {
	tables, err := cogg.GenerateTables("amdahl-minimal.cogg", specs.AmdahlMinimal)
	if err != nil {
		log.Fatal(err)
	}
	s := tables.Stats()
	fmt.Println(s.Productions > 50, s.States > 100, s.SignificantEntries < s.Entries)
	// Output: true true true
}

// ExampleTarget_TranslateIF drives the code generator over textual IF.
func ExampleTarget_TranslateIF() {
	target, err := cogg.NewS370Target("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		log.Fatal(err)
	}
	listing, err := target.TranslateIF(
		"assign fullword dsp.96 r.13 iadd fullword dsp.96 r.13 fullword dsp.100 r.13")
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(listing), "\n")[1:] {
		fmt.Println(strings.Join(strings.Fields(line)[1:], " "))
	}
	// Output:
	// l r1,100(r13)
	// a r1,96(r13)
	// st r1,96(r13)
}

func TestFacadeDeckAndSizes(t *testing.T) {
	tbl, err := cogg.GenerateTables("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	sz, err := tbl.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	if sz.CompressedPages >= sz.UncompressedPages {
		t.Error("compression ratio inverted")
	}
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: %d, %v", n, err)
	}

	p, err := tbl.Target().CompilePascal("t.pas", `
program t;
var a: array[1..5] of integer; i: integer; flag: boolean;
begin
  for i := 1 to 5 do a[i] := i * i;
  flag := a[5] = 25
end.
`, cogg.Options{CommonSubexpressions: true, StatementRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions() == 0 || p.CodeBytes() == 0 {
		t.Error("empty program")
	}
	var deck bytes.Buffer
	if err := p.WriteDeck(&deck); err != nil {
		t.Fatal(err)
	}
	if deck.Len()%80 != 0 {
		t.Errorf("deck not card aligned: %d", deck.Len())
	}
	res, err := p.Run(nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := res.Element("a", 3); err != nil || v != 9 {
		t.Errorf("a[3] = %d, %v", v, err)
	}
	if ok, err := res.Bool("flag"); err != nil || !ok {
		t.Errorf("flag = %v, %v", ok, err)
	}
	if _, err := res.Element("a", 6); err == nil {
		t.Error("out-of-range Element succeeded")
	}
	if _, err := res.Int("nosuch"); err == nil {
		t.Error("unknown variable read succeeded")
	}
}

func TestFacadeSubscriptChecks(t *testing.T) {
	target, err := cogg.NewS370Target("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	p, err := target.CompilePascal("c.pas", `
program c;
var a: array[1..4] of integer; i, x: integer;
begin x := a[i] end.
`, cogg.Options{SubscriptChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(map[string]int32{"i": 2}, 100_000); err != nil {
		t.Fatalf("in-range run: %v", err)
	}
	if _, err := p.Run(map[string]int32{"i": 9}, 100_000); err == nil {
		t.Error("out-of-range subscript did not abort")
	}
}

func TestFacadeRISC(t *testing.T) {
	target, err := cogg.NewRISCTarget("risc32.cogg", specs.Risc32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := target.CompilePascal("r.pas", `
program r;
var x, y: integer;
begin
  x := 6; y := x * 7
end.
`, cogg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Listing(), "mul") {
		t.Errorf("risc listing:\n%s", p.Listing())
	}
}
