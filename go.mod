module cogg

go 1.22
